//! The probe/observer API: a typed simulation event stream plus the
//! [`Probe`] trait consumers implement to collect anything from it.
//!
//! Historically every metric lived in one hard-coded flat
//! [`crate::Metrics`] struct whose every field had to be hand-threaded
//! through `Machine`, `RunReport`, a hand-rolled JSON writer, and the CLI
//! tables. The probe API inverts that: the machine emits a [`SimEvent`] at
//! every point where it used to bump a counter, and *observers* — probes —
//! fold the stream into whatever they want. The flat metrics themselves are
//! now just the built-in [`crate::probes::CoreMetricsProbe`]; new metrics
//! are new probes, not new struct fields.
//!
//! # The pieces
//!
//! * [`SimEvent`] — the event catalog (op retired, cache hit/miss, message
//!   sent/delivered/serviced, invalidations with `had_copy`,
//!   self-invalidations, prediction verdicts, barrier and lock activity,
//!   end-of-run storage accounting);
//! * [`Probe`] — `on_event` per event plus a consuming `finish` that yields
//!   an optional self-describing [`MetricsSection`];
//! * [`ProbeFactory`] — builds one fresh probe per run (sweeps share
//!   factories across worker threads, so factories are `Send + Sync`);
//! * [`ProbeRegistry`] — resolves probe *spec strings* (`"per-node"`,
//!   `"hist:self-inv-lead"`, `"record:out.ltrace"`) to factories, exactly
//!   as [`ltp_core::PolicyRegistry`] does for policies, and is open to
//!   external registrations.
//!
//! # Spec-string grammar
//!
//! ```text
//! spec := name [ ":" argument ]
//! ```
//!
//! The name selects a registered constructor; everything after the first
//! `:` is passed to it verbatim (trimmed) as a free-form argument —
//! histogram selectors, file paths, whatever the probe family needs.
//!
//! # Writing a probe
//!
//! ```
//! use ltp_core::JsonObject;
//! use ltp_system::{ExperimentSpec, MetricsSection, Probe, ProbeCtx, SimEvent};
//! use ltp_workloads::Benchmark;
//!
//! /// Counts barrier releases.
//! #[derive(Debug, Default)]
//! struct BarrierCounter {
//!     releases: u64,
//! }
//!
//! impl Probe for BarrierCounter {
//!     fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
//!         if let SimEvent::BarrierRelease { .. } = event {
//!             self.releases += 1;
//!         }
//!     }
//!     fn finish(self: Box<Self>) -> Option<MetricsSection> {
//!         Some(MetricsSection::new(
//!             "barriers",
//!             JsonObject::new().field("releases", self.releases).build(),
//!         ))
//!     }
//! }
//!
//! let report = ExperimentSpec::builder(Benchmark::Ocean)
//!     .policy_spec("base").unwrap()
//!     .nodes(4).iterations(2)
//!     .probe_fn("barriers", || Box::new(BarrierCounter::default()))
//!     .build()
//!     .run();
//! let section = &report.sections[0];
//! assert_eq!(section.name, "barriers");
//! assert!(section.data.render().starts_with("{\"releases\":"));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ltp_core::{BlockId, JsonValue, NodeId, Pc, StorageStats, VerifyOutcome};
use ltp_dsm::{DirectoryKind, Message};
use ltp_sim::Cycle;
use ltp_workloads::{Op, WorkloadParams};

use crate::probes::{
    HeatProbe, MsgLatencyProbe, PerNodeProbe, SelfInvLeadProbe, TraceRecorderProbe,
};

/// One observation from the running machine.
///
/// Events are emitted at exactly the points where the pre-probe simulator
/// updated its hard-coded counters, plus the synchronization and per-op
/// hooks new consumers need. Every variant is `Copy`; probes receive them
/// by reference in simulation order.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A processor fetched its next program operation (emitted at issue,
    /// once per [`Op`] — spin retries and protocol traffic are *not* ops).
    /// The per-node subsequence of these events is exactly the node's
    /// program stream, which is what makes live trace recording a probe.
    OpRetired {
        /// The fetching processor.
        node: NodeId,
        /// The operation.
        op: Op,
    },
    /// A shared-memory access hit in the node's network cache.
    CacheHit {
        /// The accessing processor.
        node: NodeId,
        /// Block touched.
        block: BlockId,
        /// Static instruction site.
        pc: Pc,
        /// Store (vs load).
        is_write: bool,
        /// The cached copy was exclusive.
        exclusive: bool,
    },
    /// A shared-memory access missed (a coherence request was issued).
    CacheMiss {
        /// The accessing processor.
        node: NodeId,
        /// Block touched.
        block: BlockId,
        /// Static instruction site.
        pc: Pc,
        /// Store (vs load).
        is_write: bool,
    },
    /// A protocol message left its source (before NI serialization).
    MessageSent {
        /// The message.
        msg: Message,
    },
    /// A protocol message reached its destination node.
    MessageDelivered {
        /// The message.
        msg: Message,
    },
    /// A home's protocol engine dequeued a message and handed it to the
    /// directory state machine (start of service; the matching
    /// [`SimEvent::MessageServiced`] follows with the timing). Unlike
    /// `MessageServiced` this carries the *full* message, so checkers can
    /// replay directory decisions from ground state.
    DirAccepted {
        /// The home node servicing the message.
        home: NodeId,
        /// The message entering service.
        msg: Message,
    },
    /// A home's protocol engine completed one directory service.
    MessageServiced {
        /// The home node whose engine serviced the message.
        home: NodeId,
        /// The serviced message's wire kind.
        kind: ltp_dsm::MsgKind,
        /// Cycles the message waited in the engine queue.
        queueing: Cycle,
        /// Service occupancy (control vs data timing class).
        service: Cycle,
        /// Whether the service moved a data block.
        data: bool,
    },
    /// The directory sent an invalidation on behalf of a request.
    InvalidationSent {
        /// The home that sent it.
        home: NodeId,
        /// The invalidated node.
        to: NodeId,
        /// The block.
        block: BlockId,
    },
    /// The directory consumed an invalidation acknowledgement;
    /// `had_copy = false` is an over-invalidation.
    InvalidationAcked {
        /// The home that consumed it.
        home: NodeId,
        /// The acknowledging node.
        from: NodeId,
        /// The block.
        block: BlockId,
        /// Whether a cached copy was actually relinquished.
        had_copy: bool,
    },
    /// A limited-pointer sharer array overflowed into broadcast mode.
    BroadcastOverflow {
        /// The home whose array overflowed.
        home: NodeId,
        /// The block.
        block: BlockId,
    },
    /// A `sparse:E` directory replaced a tracked entry: the victim block's
    /// holders were sent eviction invalidations (counted separately from
    /// demand `InvalidationSent` traffic).
    DirEntryEvicted {
        /// The home whose entry cache replaced an entry.
        home: NodeId,
        /// The *victim* block whose entry was reclaimed.
        block: BlockId,
        /// Eviction invalidations sent for the victim (0 under the
        /// `SkipEvictionInv` mutant).
        invalidations: u16,
    },
    /// The directory ignored a stale message (race bookkeeping). A stale
    /// *self-invalidation* (`kind` is `SelfInvClean`/`SelfInvDirty`) means
    /// that prediction will never receive a verdict — lead-time trackers
    /// must retire it here.
    StaleIgnored {
        /// The home that ignored it.
        home: NodeId,
        /// The stale sender.
        from: NodeId,
        /// The block.
        block: BlockId,
        /// The stale message's kind.
        kind: ltp_dsm::MsgKind,
    },
    /// An invalidation arrived at a node's cache. `had_copy = true` is the
    /// paper's "not predicted" class: a real invalidation removed a copy no
    /// prediction saved.
    Invalidated {
        /// The invalidated node.
        node: NodeId,
        /// The block.
        block: BlockId,
        /// Whether a copy was dropped.
        had_copy: bool,
    },
    /// A node self-invalidated a block — a last-touch prediction *fired*.
    SelfInvalidation {
        /// The predicting node.
        node: NodeId,
        /// The block.
        block: BlockId,
        /// The relinquished copy was dirty (writeback) vs clean.
        dirty: bool,
    },
    /// The directory's verification verdict for an earlier
    /// self-invalidation reached the predicting node.
    /// [`VerifyOutcome::Correct`] with `timely` is the paper's best case;
    /// `Correct` without `timely` arrived after the conflicting request was
    /// already in service (late); [`VerifyOutcome::Premature`] means the
    /// predictor fired early and the node itself came back first.
    PredictionVerified {
        /// The node that predicted.
        node: NodeId,
        /// The block.
        block: BlockId,
        /// Correct or premature.
        outcome: VerifyOutcome,
        /// For correct verdicts: the self-invalidation reached the
        /// directory before the conflicting request (Table 4 timeliness).
        timely: bool,
    },
    /// A processor arrived at a barrier.
    BarrierEnter {
        /// The arriving processor.
        node: NodeId,
        /// Barrier identifier.
        id: u32,
    },
    /// A barrier released every waiting processor.
    BarrierRelease {
        /// Barrier identifier.
        id: u32,
        /// How many processors were released.
        waiters: u16,
    },
    /// A processor won a lock's test-and-set.
    LockAcquired {
        /// The new owner.
        node: NodeId,
        /// The lock block.
        block: BlockId,
    },
    /// A processor released a lock.
    LockReleased {
        /// The former owner.
        node: NodeId,
        /// The lock block.
        block: BlockId,
    },
    /// A processor finished its program (at the context's `now`).
    NodeFinished {
        /// The finished processor.
        node: NodeId,
    },
    /// End-of-run predictor storage accounting for one node (emitted once
    /// per node, in node order, after the simulation drains).
    PolicyStorage {
        /// The node.
        node: NodeId,
        /// Its policy's storage statistics.
        stats: StorageStats,
    },
}

/// Context shared by every event delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCtx {
    /// The simulation time of the event.
    pub now: Cycle,
    /// The machine size.
    pub nodes: u16,
}

/// What a probe factory is told about the run it is instrumenting.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// The workload's display name (benchmark name or trace-header name).
    pub workload_name: String,
    /// The effective workload parameters (trace geometry already pinned).
    pub workload: WorkloadParams,
    /// The directory sharer organization of the run.
    pub directory: DirectoryKind,
}

/// One named, self-describing block of collected metrics.
///
/// `RunReport` serializes sections under a `"sections"` JSON object keyed
/// by name, so a section is anything [`JsonValue`] can express — no report
/// or CLI code changes when a new probe ships.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSection {
    /// The section's name (conventionally the probe's spec string).
    pub name: String,
    /// The collected data.
    pub data: JsonValue,
}

impl MetricsSection {
    /// Creates a section.
    pub fn new(name: &str, data: JsonValue) -> Self {
        MetricsSection {
            name: name.to_string(),
            data,
        }
    }
}

/// A simulation observer.
///
/// Probes receive every [`SimEvent`] of one run in simulation order and
/// fold them into whatever state they like; [`Probe::finish`] consumes the
/// probe after the run drains and yields an optional [`MetricsSection`] for
/// the report (side-effecting probes — the trace recorder writes a file —
/// may return `None`).
///
/// Probes must be deterministic: reports are compared bit-for-bit across
/// serial/parallel and record/replay runs. They run on sweep worker
/// threads, hence `Send`.
pub trait Probe: fmt::Debug + Send {
    /// Observes one event.
    fn on_event(&mut self, ctx: &ProbeCtx, event: &SimEvent);

    /// Consumes the probe after the run completes.
    fn finish(self: Box<Self>) -> Option<MetricsSection>;
}

/// Builds one fresh [`Probe`] per run.
///
/// Factories are the unit of registration and sweeping: one factory
/// attached to a sweep instruments every run of the cross product with its
/// own probe instance.
pub trait ProbeFactory: fmt::Debug + Send + Sync {
    /// The probe family name (`"per-node"`, `"hist"`, …).
    fn name(&self) -> &str;

    /// The canonical spec string reconstructing this factory. Defaults to
    /// [`Self::name`] for argument-less probes.
    fn spec(&self) -> String {
        self.name().to_string()
    }

    /// Instantiates one probe for one run.
    fn build(&self, run: &RunInfo) -> Box<dyn Probe>;
}

/// A [`ProbeFactory`] wrapping a closure — the quickest way to attach an
/// ad-hoc probe type to a single experiment (see
/// [`crate::ExperimentBuilder::probe_fn`]).
pub struct FnProbeFactory {
    name: String,
    make: Box<dyn Fn() -> Box<dyn Probe> + Send + Sync>,
}

impl FnProbeFactory {
    /// Wraps `make` under `name`.
    pub fn new(name: &str, make: impl Fn() -> Box<dyn Probe> + Send + Sync + 'static) -> Self {
        FnProbeFactory {
            name: name.to_string(),
            make: Box::new(make),
        }
    }
}

impl fmt::Debug for FnProbeFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProbeFactory")
            .field("name", &self.name)
            .finish()
    }
}

impl ProbeFactory for FnProbeFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, _run: &RunInfo) -> Box<dyn Probe> {
        (self.make)()
    }
}

/// Error produced while resolving a probe spec string or registering a
/// probe name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeSpecError {
    /// The spec string was empty.
    EmptySpec,
    /// No probe of this name is registered.
    UnknownProbe {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// The probe requires an argument and none was given.
    MissingArg {
        /// The probe being configured.
        probe: String,
        /// What the probe wanted (e.g. `"an output path"`).
        expected: String,
    },
    /// The probe takes no argument but one was given.
    UnexpectedArg {
        /// The probe being configured.
        probe: String,
        /// The rejected argument.
        arg: String,
    },
    /// The argument was not one the probe understands.
    InvalidArg {
        /// The probe being configured.
        probe: String,
        /// The rejected argument.
        arg: String,
        /// What the probe wanted.
        expected: String,
    },
    /// `register` was called with a name that is already taken.
    DuplicateName {
        /// The contested name.
        name: String,
    },
}

impl fmt::Display for ProbeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeSpecError::EmptySpec => write!(f, "empty probe spec"),
            ProbeSpecError::UnknownProbe { name, known } => {
                write!(f, "unknown probe `{name}` (known: {})", known.join(", "))
            }
            ProbeSpecError::MissingArg { probe, expected } => {
                write!(f, "probe `{probe}` needs an argument: {expected}")
            }
            ProbeSpecError::UnexpectedArg { probe, arg } => {
                write!(f, "probe `{probe}` takes no argument, got `{arg}`")
            }
            ProbeSpecError::InvalidArg {
                probe,
                arg,
                expected,
            } => write!(
                f,
                "probe `{probe}`: argument `{arg}` invalid, expected {expected}"
            ),
            ProbeSpecError::DuplicateName { name } => {
                write!(f, "a probe named `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for ProbeSpecError {}

type ProbeConstructor =
    Box<dyn Fn(Option<&str>) -> Result<Arc<dyn ProbeFactory>, ProbeSpecError> + Send + Sync>;

struct ProbeEntry {
    summary: String,
    make: ProbeConstructor,
}

/// Maps probe names to factory constructors — the probe-side mirror of
/// [`ltp_core::PolicyRegistry`].
///
/// [`ProbeRegistry::with_builtins`] pre-registers the in-tree probes;
/// [`ProbeRegistry::register`] opens the table to external crates (see
/// `examples/custom_probe.rs`).
///
/// # Examples
///
/// ```
/// use ltp_system::ProbeRegistry;
///
/// let registry = ProbeRegistry::with_builtins();
/// assert!(registry.parse("per-node").is_ok());
/// assert!(registry.parse("hist:self-inv-lead").is_ok());
/// assert!(registry.parse("hist:nope").is_err(), "unknown histogram");
/// assert!(registry.parse("no-such-probe").is_err());
/// ```
pub struct ProbeRegistry {
    entries: BTreeMap<String, ProbeEntry>,
}

impl fmt::Debug for ProbeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for ProbeRegistry {
    /// Equivalent to [`ProbeRegistry::with_builtins`].
    fn default() -> Self {
        ProbeRegistry::with_builtins()
    }
}

impl ProbeRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        ProbeRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry pre-loaded with the built-in probes:
    ///
    /// | spec | probe |
    /// |---|---|
    /// | `per-node` | per-node accuracy/traffic breakdown |
    /// | `hist:self-inv-lead` | lead-time histogram of self-invalidations |
    /// | `hist:msg-latency` | directory queueing/service latency per message class |
    /// | `record:<file>` | tee the as-simulated op stream to a trace file |
    pub fn with_builtins() -> Self {
        let mut r = ProbeRegistry::empty();
        r.register(
            "check",
            "online coherence sanitizer: replay the event stream against an \
             independent shadow directory and the invariant catalog \
             (check:strict panics at the first violation)",
            |arg| match arg {
                None => Ok(Arc::new(crate::checker::CheckerFactory { strict: false })),
                Some("strict") => Ok(Arc::new(crate::checker::CheckerFactory { strict: true })),
                Some(other) => Err(ProbeSpecError::InvalidArg {
                    probe: "check".to_string(),
                    arg: other.to_string(),
                    expected: "no argument, or :strict".to_string(),
                }),
            },
        )
        .expect("fresh registry");
        r.register(
            "per-node",
            "per-node accuracy and traffic breakdown (one record per node)",
            |arg| match arg {
                None => Ok(Arc::new(PerNodeFactory)),
                Some(arg) => Err(ProbeSpecError::UnexpectedArg {
                    probe: "per-node".to_string(),
                    arg: arg.to_string(),
                }),
            },
        )
        .expect("fresh registry");
        r.register(
            "hist",
            "distribution probes; hist:self-inv-lead = lead time between a \
             self-invalidation and its verification verdict, \
             hist:msg-latency = directory queueing/service latency per \
             message class",
            |arg| match arg {
                Some("self-inv-lead") => Ok(Arc::new(SelfInvLeadFactory)),
                Some("msg-latency") => Ok(Arc::new(MsgLatencyFactory)),
                Some(other) => Err(ProbeSpecError::InvalidArg {
                    probe: "hist".to_string(),
                    arg: other.to_string(),
                    expected: "one of: self-inv-lead, msg-latency".to_string(),
                }),
                None => Err(ProbeSpecError::MissingArg {
                    probe: "hist".to_string(),
                    expected: "a histogram name (hist:self-inv-lead, hist:msg-latency)".to_string(),
                }),
            },
        )
        .expect("fresh registry");
        r.register(
            "heat",
            "per-block heat map: the K hottest blocks by access count, with \
             demand invalidations and directory-entry evictions (heat:<K>)",
            |arg| match arg {
                Some(k) => match k.parse::<usize>() {
                    Ok(k) if k >= 1 => Ok(Arc::new(HeatFactory { k })),
                    _ => Err(ProbeSpecError::InvalidArg {
                        probe: "heat".to_string(),
                        arg: k.to_string(),
                        expected: "a block count of at least 1 (heat:<K>)".to_string(),
                    }),
                },
                None => Err(ProbeSpecError::MissingArg {
                    probe: "heat".to_string(),
                    expected: "a block count (heat:<K>)".to_string(),
                }),
            },
        )
        .expect("fresh registry");
        r.register(
            "record",
            "tee the as-simulated op stream into a trace file (record:<FILE.ltrace>)",
            |arg| match arg {
                Some(path) => Ok(Arc::new(RecordFactory {
                    path: path.to_string(),
                })),
                None => Err(ProbeSpecError::MissingArg {
                    probe: "record".to_string(),
                    expected: "an output path (record:<FILE.ltrace>)".to_string(),
                }),
            },
        )
        .expect("fresh registry");
        r
    }

    /// Registers a probe constructor under `name`. The constructor receives
    /// the spec's argument (the trimmed text after the first `:`, if any).
    ///
    /// # Errors
    ///
    /// Returns [`ProbeSpecError::DuplicateName`] if `name` is taken.
    pub fn register(
        &mut self,
        name: &str,
        summary: &str,
        make: impl Fn(Option<&str>) -> Result<Arc<dyn ProbeFactory>, ProbeSpecError>
            + Send
            + Sync
            + 'static,
    ) -> Result<(), ProbeSpecError> {
        if self.entries.contains_key(name) {
            return Err(ProbeSpecError::DuplicateName {
                name: name.to_string(),
            });
        }
        self.entries.insert(
            name.to_string(),
            ProbeEntry {
                summary: summary.to_string(),
                make: Box::new(make),
            },
        );
        Ok(())
    }

    /// Registers one argument-less factory under its own
    /// [`ProbeFactory::name`].
    ///
    /// # Errors
    ///
    /// Returns [`ProbeSpecError::DuplicateName`] if the name is taken.
    pub fn register_factory(
        &mut self,
        factory: Arc<dyn ProbeFactory>,
    ) -> Result<(), ProbeSpecError> {
        let name = factory.name().to_string();
        let summary = format!("custom probe `{}`", factory.spec());
        self.register(&name, &summary, move |arg| match arg {
            None => Ok(Arc::clone(&factory)),
            Some(arg) => Err(ProbeSpecError::UnexpectedArg {
                probe: factory.name().to_string(),
                arg: arg.to_string(),
            }),
        })
    }

    /// Resolves a spec string (`name[:argument]`) to a factory.
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeSpecError`] describing exactly what was wrong.
    pub fn parse(&self, spec: &str) -> Result<Arc<dyn ProbeFactory>, ProbeSpecError> {
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name.trim(), Some(arg.trim())),
            None => (spec.trim(), None),
        };
        if name.is_empty() {
            return Err(ProbeSpecError::EmptySpec);
        }
        let arg = arg.filter(|a| !a.is_empty());
        let Some(entry) = self.entries.get(name) else {
            return Err(ProbeSpecError::UnknownProbe {
                name: name.to_string(),
                known: self.names().map(str::to_string).collect(),
            });
        };
        (entry.make)(arg)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All registered `(name, summary)` pairs, sorted by name.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|(name, e)| (name.as_str(), e.summary.as_str()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }
}

// ---- built-in factories ---------------------------------------------------

/// Factory for the per-node breakdown probe (`per-node`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerNodeFactory;

impl ProbeFactory for PerNodeFactory {
    fn name(&self) -> &str {
        "per-node"
    }

    fn build(&self, run: &RunInfo) -> Box<dyn Probe> {
        Box::new(PerNodeProbe::new(run.workload.nodes))
    }
}

/// Factory for the self-invalidation lead-time histogram
/// (`hist:self-inv-lead`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfInvLeadFactory;

impl ProbeFactory for SelfInvLeadFactory {
    fn name(&self) -> &str {
        "hist"
    }

    fn spec(&self) -> String {
        "hist:self-inv-lead".to_string()
    }

    fn build(&self, _run: &RunInfo) -> Box<dyn Probe> {
        Box::new(SelfInvLeadProbe::new())
    }
}

/// Factory for the message latency histogram (`hist:msg-latency`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MsgLatencyFactory;

impl ProbeFactory for MsgLatencyFactory {
    fn name(&self) -> &str {
        "hist"
    }

    fn spec(&self) -> String {
        "hist:msg-latency".to_string()
    }

    fn build(&self, _run: &RunInfo) -> Box<dyn Probe> {
        Box::new(MsgLatencyProbe::new())
    }
}

/// Factory for the per-block heat map (`heat:<K>`).
#[derive(Debug, Clone, Copy)]
pub struct HeatFactory {
    /// How many of the hottest blocks the section keeps.
    pub k: usize,
}

impl ProbeFactory for HeatFactory {
    fn name(&self) -> &str {
        "heat"
    }

    fn spec(&self) -> String {
        format!("heat:{}", self.k)
    }

    fn build(&self, _run: &RunInfo) -> Box<dyn Probe> {
        Box::new(HeatProbe::new(self.k))
    }
}

/// Factory for the live trace recorder (`record:<file>`).
#[derive(Debug, Clone)]
pub struct RecordFactory {
    /// Output path of the `.ltrace` file.
    pub path: String,
}

impl ProbeFactory for RecordFactory {
    fn name(&self) -> &str {
        "record"
    }

    fn spec(&self) -> String {
        format!("record:{}", self.path)
    }

    fn build(&self, run: &RunInfo) -> Box<dyn Probe> {
        Box::new(TraceRecorderProbe::new(
            &self.path,
            &run.workload_name,
            run.workload,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_resolve_and_round_trip() {
        let registry = ProbeRegistry::with_builtins();
        for (spec, canonical) in [
            ("check", "check"),
            ("check:strict", "check:strict"),
            ("per-node", "per-node"),
            ("hist:self-inv-lead", "hist:self-inv-lead"),
            (" hist : self-inv-lead ", "hist:self-inv-lead"),
            ("hist:msg-latency", "hist:msg-latency"),
            ("record:/tmp/x.ltrace", "record:/tmp/x.ltrace"),
            ("heat:16", "heat:16"),
        ] {
            let factory = registry
                .parse(spec)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(factory.spec(), canonical);
        }
        let names: Vec<&str> = registry.names().collect();
        assert_eq!(names, ["check", "heat", "hist", "per-node", "record"]);
    }

    #[test]
    fn spec_errors_are_precise() {
        let registry = ProbeRegistry::with_builtins();
        assert!(matches!(registry.parse(""), Err(ProbeSpecError::EmptySpec)));
        let err = registry.parse("nope").unwrap_err();
        assert!(matches!(err, ProbeSpecError::UnknownProbe { .. }), "{err}");
        assert!(err.to_string().contains("per-node"), "{err}");
        assert!(matches!(
            registry.parse("hist"),
            Err(ProbeSpecError::MissingArg { .. })
        ));
        assert!(matches!(
            registry.parse("check:lenient"),
            Err(ProbeSpecError::InvalidArg { .. })
        ));
        assert!(matches!(
            registry.parse("hist:uptime"),
            Err(ProbeSpecError::InvalidArg { .. })
        ));
        assert!(matches!(
            registry.parse("per-node:extra"),
            Err(ProbeSpecError::UnexpectedArg { .. })
        ));
        assert!(matches!(
            registry.parse("record"),
            Err(ProbeSpecError::MissingArg { .. })
        ));
        assert!(matches!(
            registry.parse("record:"),
            Err(ProbeSpecError::MissingArg { .. })
        ));
    }

    #[test]
    fn registration_is_open_and_names_stay_unique() {
        let mut registry = ProbeRegistry::with_builtins();
        registry
            .register_factory(Arc::new(FnProbeFactory::new("noop", || {
                #[derive(Debug)]
                struct Noop;
                impl Probe for Noop {
                    fn on_event(&mut self, _ctx: &ProbeCtx, _event: &SimEvent) {}
                    fn finish(self: Box<Self>) -> Option<MetricsSection> {
                        None
                    }
                }
                Box::new(Noop)
            })))
            .unwrap();
        assert!(registry.contains("noop"));
        assert!(registry.parse("noop").is_ok());
        assert!(matches!(
            registry.register("per-node", "dup", |_| Err(ProbeSpecError::EmptySpec)),
            Err(ProbeSpecError::DuplicateName { .. })
        ));
        assert_eq!(registry.entries().count(), 6);
    }
}
