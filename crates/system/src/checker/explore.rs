//! Exhaustive small-configuration model checker (`ltp check --exhaustive`).
//!
//! Enumerates the **full reachable state space** of a tiny machine — real
//! [`NodeCache`] and [`Directory`] components, modeled per-edge FIFO
//! channels and per-home service queues — over *every* interleaving of
//! processor issue, self-invalidation, message delivery, and directory
//! service. The invariant catalog (module docs of [`crate::checker`]) is
//! asserted in every discovered state; a violation yields the shortest
//! event trace that reaches it (BFS order), printed as a replayable
//! counterexample.
//!
//! This is deliberately a zero-dependency mini-Murphi: exhaustive up to the
//! configured op budget, deterministic, and fast enough for CI because the
//! interesting protocol races (self-invalidation crossing an invalidation,
//! upgrade losing to a remote write, broadcast overflow, mask resolution
//! order) all manifest with 2–3 nodes and 1–2 blocks.

use std::collections::{BTreeMap, VecDeque};

use ltp_core::{BlockId, FxHashMap, NodeId, VerifyOutcome};
use ltp_dsm::{
    AccessOutcome, DirStateView, Directory, DirectoryKind, Line, Message, MsgKind, NodeCache,
};

use super::shadow::rep_admits;

/// The configuration a [`explore`] run enumerates.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Machine size (keep at 2–3; the state space is exponential).
    pub nodes: u16,
    /// Number of distinct blocks in the op alphabet (1–3; homes are
    /// `block % nodes`, so 3 blocks on 2 nodes co-home a pair — the
    /// geometry that exercises sparse-directory evictions).
    pub blocks: u64,
    /// Reads/writes each node may issue (the run budget).
    pub ops_per_node: u32,
    /// Directory sharer organization under test.
    pub directory: DirectoryKind,
    /// Abort (with `truncated = true`) after this many discovered states.
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            nodes: 2,
            blocks: 1,
            ops_per_node: 3,
            directory: DirectoryKind::Full,
            max_states: 4_000_000,
        }
    }
}

impl ExploreConfig {
    fn home_of(&self, block: BlockId) -> NodeId {
        NodeId::new((block.index() % u64::from(self.nodes)) as u16)
    }
}

/// The shortest trace reaching an invariant violation.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The failed catalog row.
    pub invariant: &'static str,
    /// Evidence from the violating state.
    pub detail: String,
    /// Transition labels from the initial state to the violation, in order.
    pub trace: Vec<String>,
}

/// Result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Distinct reachable states discovered.
    pub states: usize,
    /// Transitions taken (edges of the reachability graph).
    pub transitions: usize,
    /// The first (shortest, by BFS) violation, if any.
    pub violation: Option<CounterExample>,
    /// True when `max_states` stopped the search before exhaustion.
    pub truncated: bool,
}

/// One per-node program: a budget of ops and the op currently stalled on a
/// miss (block, is_write).
#[derive(Debug, Clone)]
struct Run {
    remaining: u32,
    blocked: Option<(BlockId, bool)>,
}

#[derive(Debug, Clone)]
struct State {
    caches: Vec<NodeCache>,
    dirs: Vec<Directory>,
    /// Point-to-point FIFO channels, the NI-serialization model. Empty
    /// channels are removed so encodings stay canonical.
    edges: BTreeMap<(u16, u16), VecDeque<Message>>,
    /// Per-home directory service queues (arrival order).
    engines: Vec<VecDeque<Message>>,
    runs: Vec<Run>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// Node issues a read (`false`) or write (`true`) to a block.
    Issue(u16, u64, bool),
    /// Node speculatively self-invalidates a valid, non-pending line.
    SelfInv(u16, u64),
    /// Deliver the head of one channel.
    Deliver(u16, u16),
    /// The home's engine services the head of its queue.
    Service(u16),
}

fn label(st: &State, c: Choice) -> String {
    match c {
        Choice::Issue(n, b, w) => {
            format!("n{n}: {} b{b}", if w { "write" } else { "read" })
        }
        Choice::SelfInv(n, b) => format!("n{n}: self-invalidate b{b}"),
        Choice::Deliver(s, d) => {
            let kind = st
                .edges
                .get(&(s, d))
                .and_then(|q| q.front())
                .map_or_else(|| "?".to_string(), |m| format!("{:?}", m.kind));
            format!("deliver n{s}->n{d}: {kind}")
        }
        Choice::Service(h) => {
            let kind = st.engines[usize::from(h)]
                .front()
                .map_or_else(|| "?".to_string(), |m| format!("{:?}", m.kind));
            format!("h{h}: service {kind}")
        }
    }
}

fn choices(cfg: &ExploreConfig, st: &State) -> Vec<Choice> {
    let mut out = Vec::new();
    for n in 0..cfg.nodes {
        let run = &st.runs[usize::from(n)];
        if run.blocked.is_none() && run.remaining > 0 {
            for b in 0..cfg.blocks {
                out.push(Choice::Issue(n, b, false));
                out.push(Choice::Issue(n, b, true));
            }
        }
        for (b, _) in st.caches[usize::from(n)].lines() {
            if run.blocked.is_none_or(|(pb, _)| pb != b) {
                out.push(Choice::SelfInv(n, b.index()));
            }
        }
    }
    // `lines()` iterates a hash map; keep choice order canonical.
    out.sort_by_key(|c| match *c {
        Choice::Issue(n, b, w) => (0, n, b, u16::from(w)),
        Choice::SelfInv(n, b) => (1, n, b, 0),
        _ => unreachable!(),
    });
    for (&(s, d), q) in &st.edges {
        if !q.is_empty() {
            out.push(Choice::Deliver(s, d));
        }
    }
    for h in 0..cfg.nodes {
        if !st.engines[usize::from(h)].is_empty() {
            out.push(Choice::Service(h));
        }
    }
    out
}

fn push_edge(st: &mut State, msg: Message) {
    st.edges
        .entry((msg.src.index() as u16, msg.dst.index() as u16))
        .or_default()
        .push_back(msg);
}

fn directory_bound(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::GetS
            | MsgKind::GetX
            | MsgKind::Upgrade
            | MsgKind::SelfInvClean
            | MsgKind::SelfInvDirty { .. }
            | MsgKind::InvAck { .. }
    )
}

/// Applies one transition. `Err` is a transition-level violation (a message
/// that cannot legally be delivered in the source state).
fn step(cfg: &ExploreConfig, st: &State, c: Choice) -> Result<State, (&'static str, String)> {
    let mut next = st.clone();
    match c {
        Choice::Issue(n, b, is_write) => {
            let node = NodeId::new(n);
            let block = BlockId::new(b);
            let run = &mut next.runs[usize::from(n)];
            run.remaining -= 1;
            match next.caches[usize::from(n)].access(block, is_write) {
                AccessOutcome::Hit { .. } => {}
                AccessOutcome::Miss(kind) => {
                    next.runs[usize::from(n)].blocked = Some((block, is_write));
                    push_edge(
                        &mut next,
                        Message::new(node, cfg.home_of(block), block, kind),
                    );
                }
            }
        }
        Choice::SelfInv(n, b) => {
            let node = NodeId::new(n);
            let block = BlockId::new(b);
            let kind = next.caches[usize::from(n)]
                .self_invalidate(block)
                .expect("choice enumerated on a valid line");
            push_edge(
                &mut next,
                Message::new(node, cfg.home_of(block), block, kind),
            );
        }
        Choice::Deliver(s, d) => {
            let msg = {
                let q = next.edges.get_mut(&(s, d)).expect("choice on live edge");
                let m = q.pop_front().expect("choice on non-empty edge");
                if q.is_empty() {
                    next.edges.remove(&(s, d));
                }
                m
            };
            if directory_bound(msg.kind) {
                next.engines[usize::from(d)].push_back(msg);
            } else {
                match msg.kind {
                    MsgKind::Inv => {
                        let resp = next.caches[usize::from(d)].handle_inv(msg.block);
                        push_edge(
                            &mut next,
                            Message::new(
                                msg.dst,
                                msg.src,
                                msg.block,
                                MsgKind::InvAck {
                                    had_copy: resp.had_copy,
                                    dirty_token: resp.dirty_token,
                                },
                            ),
                        );
                    }
                    MsgKind::VerifyCorrect { .. } => {}
                    _ => {
                        // A fill must land on the node's outstanding miss.
                        let run = &mut next.runs[usize::from(d)];
                        if run.blocked.is_none_or(|(b, _)| b != msg.block) {
                            return Err((
                                "conservation",
                                format!(
                                    "n{d} received {:?} for b{} with no miss outstanding",
                                    msg.kind,
                                    msg.block.index()
                                ),
                            ));
                        }
                        run.blocked = None;
                        next.caches[usize::from(d)].apply_reply(msg.block, msg.kind);
                    }
                }
            }
        }
        Choice::Service(h) => {
            let msg = next.engines[usize::from(h)]
                .pop_front()
                .expect("choice on non-empty engine");
            let dir_step = next.dirs[usize::from(h)].process(msg);
            for m in dir_step.sends {
                push_edge(&mut next, m);
            }
            for m in dir_step.reinject {
                next.engines[usize::from(h)].push_back(m);
            }
        }
    }
    Ok(next)
}

// --- invariant catalog over a full explorer state -------------------------

#[allow(clippy::too_many_lines)]
fn check_state(cfg: &ExploreConfig, st: &State) -> Option<(&'static str, String)> {
    // Holder map: block -> [(node, line)].
    let mut holders: BTreeMap<BlockId, Vec<(NodeId, Line)>> = BTreeMap::new();
    for (n, cache) in st.caches.iter().enumerate() {
        for (b, line) in cache.lines() {
            holders
                .entry(b)
                .or_default()
                .push((NodeId::new(n as u16), line));
        }
    }

    // SWMR: a writable copy excludes every other copy.
    for (b, hs) in &holders {
        let writers: Vec<NodeId> = hs
            .iter()
            .filter(|(_, l)| l.exclusive)
            .map(|&(n, _)| n)
            .collect();
        if writers.len() > 1 {
            return Some((
                "swmr",
                format!(
                    "b{} held exclusive by {writers:?} simultaneously",
                    b.index()
                ),
            ));
        }
        if writers.len() == 1 && hs.len() > 1 {
            return Some((
                "swmr",
                format!(
                    "b{} held exclusive by {} alongside {} other cop(ies)",
                    b.index(),
                    writers[0],
                    hs.len() - 1
                ),
            ));
        }
    }

    // Cache/directory agreement, per tracked record at the block's home.
    for dir in &st.dirs {
        for (b, rec) in dir.blocks_view() {
            let hs = holders.get(&b).map_or(&[][..], Vec::as_slice);
            match &rec.state {
                DirStateView::Idle => {
                    if let Some(&(n, _)) = hs.first() {
                        return Some((
                            "agreement",
                            format!("b{} Idle at home yet cached by {n}", b.index()),
                        ));
                    }
                }
                DirStateView::Shared { sharers, broadcast } => {
                    for &(n, line) in hs {
                        if line.exclusive {
                            return Some((
                                "swmr",
                                format!("b{} Shared at home yet exclusive at {n}", b.index()),
                            ));
                        }
                        if !rep_admits(cfg.directory, sharers, *broadcast, n) {
                            return Some((
                                "agreement",
                                format!(
                                    "b{} cached by {n} but the sharer rep does not admit it",
                                    b.index()
                                ),
                            ));
                        }
                        if line.token != rec.token {
                            return Some((
                                "freshness",
                                format!(
                                    "b{}: {n} reads token {} while home serialized {}",
                                    b.index(),
                                    line.token,
                                    rec.token
                                ),
                            ));
                        }
                    }
                }
                DirStateView::Exclusive(owner) => {
                    for &(n, line) in hs {
                        if n != *owner {
                            return Some((
                                "swmr",
                                format!("b{} owned by {owner} yet also cached by {n}", b.index()),
                            ));
                        }
                        // A read-only copy at the owner is legal only in the
                        // sole-sharer upgrade window (UpgradeAck in flight),
                        // where the token still matches the home's.
                        if line.exclusive {
                            if line.token < rec.token {
                                return Some((
                                    "freshness",
                                    format!(
                                        "b{}: owner {owner} holds token {} below home's {}",
                                        b.index(),
                                        line.token,
                                        rec.token
                                    ),
                                ));
                            }
                        } else if line.token != rec.token {
                            return Some((
                                "agreement",
                                format!(
                                    "b{}: upgrading owner {owner} holds token {} != home's {}",
                                    b.index(),
                                    line.token,
                                    rec.token
                                ),
                            ));
                        }
                    }
                }
                DirStateView::Busy {
                    requester, waiting, ..
                } => {
                    for &(n, _) in hs {
                        if n != *requester && !waiting.contains(n) {
                            return Some((
                                "agreement",
                                format!("b{} Busy at home yet cached by bystander {n}", b.index()),
                            ));
                        }
                    }
                }
                DirStateView::Evicting { waiting } => {
                    // Mid-eviction the only legal copies are at holders whose
                    // invalidation is still in flight.
                    for &(n, _) in hs {
                        if !waiting.contains(n) {
                            return Some((
                                "agreement",
                                format!(
                                    "b{} Evicting at home yet cached by bystander {n}",
                                    b.index()
                                ),
                            ));
                        }
                    }
                }
            }
            for m in &rec.mask {
                if holders
                    .get(&b)
                    .is_some_and(|hs| hs.iter().any(|&(n, _)| n == m.node))
                {
                    return Some((
                        "mask",
                        format!(
                            "b{}: {} is in the verification mask yet holds a copy",
                            b.index(),
                            m.node
                        ),
                    ));
                }
            }
        }
    }
    None
}

// --- canonical state encoding (the visited-set key) -----------------------

fn enc_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn enc_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_verify(out: &mut Vec<u8>, v: Option<VerifyOutcome>) {
    out.push(match v {
        None => 0,
        Some(VerifyOutcome::Correct) => 1,
        Some(VerifyOutcome::Premature) => 2,
    });
}

fn enc_msg(out: &mut Vec<u8>, m: &Message) {
    enc_u16(out, m.src.index() as u16);
    enc_u16(out, m.dst.index() as u16);
    enc_u64(out, m.block.index());
    match m.kind {
        MsgKind::GetS => out.push(0),
        MsgKind::GetX => out.push(1),
        MsgKind::Upgrade => out.push(2),
        MsgKind::SelfInvClean => out.push(3),
        MsgKind::SelfInvDirty { token } => {
            out.push(4);
            enc_u64(out, token);
        }
        MsgKind::Inv => out.push(5),
        MsgKind::InvAck {
            had_copy,
            dirty_token,
        } => {
            out.push(6);
            out.push(u8::from(had_copy));
            enc_u64(out, dirty_token.map_or(u64::MAX, |t| t));
            out.push(u8::from(dirty_token.is_some()));
        }
        MsgKind::DataS {
            version,
            token,
            verify,
        } => {
            out.push(7);
            enc_u32(out, version);
            enc_u64(out, token);
            enc_verify(out, verify);
        }
        MsgKind::DataX {
            version,
            token,
            verify,
        } => {
            out.push(8);
            enc_u32(out, version);
            enc_u64(out, token);
            enc_verify(out, verify);
        }
        MsgKind::UpgradeAck {
            version,
            migratory,
            verify,
        } => {
            out.push(9);
            enc_u32(out, version);
            out.push(u8::from(migratory));
            enc_verify(out, verify);
        }
        MsgKind::VerifyCorrect { timely } => {
            out.push(10);
            out.push(u8::from(timely));
        }
    }
}

fn encode(st: &State) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    for (n, cache) in st.caches.iter().enumerate() {
        out.push(b'C');
        enc_u16(&mut out, n as u16);
        let mut lines: Vec<(BlockId, Line)> = cache.lines().collect();
        lines.sort_by_key(|&(b, _)| b);
        for (b, line) in lines {
            enc_u64(&mut out, b.index());
            out.push(u8::from(line.exclusive) | (u8::from(line.dirty) << 1));
            enc_u64(&mut out, line.token);
        }
        let run = &st.runs[n];
        enc_u32(&mut out, run.remaining);
        match run.blocked {
            None => out.push(0),
            Some((b, w)) => {
                out.push(1 + u8::from(w));
                enc_u64(&mut out, b.index());
            }
        }
    }
    for dir in &st.dirs {
        out.push(b'D');
        let mut blocks: Vec<_> = dir.blocks_view().collect();
        blocks.sort_by_key(|&(b, _)| b);
        for (b, rec) in blocks {
            enc_u64(&mut out, b.index());
            enc_u32(&mut out, rec.version);
            enc_u64(&mut out, rec.token);
            match &rec.state {
                DirStateView::Idle => out.push(0),
                DirStateView::Shared { sharers, broadcast } => {
                    out.push(1);
                    out.push(u8::from(*broadcast));
                    enc_u16(&mut out, sharers.len() as u16);
                    for n in sharers {
                        enc_u16(&mut out, n.index() as u16);
                    }
                }
                DirStateView::Exclusive(o) => {
                    out.push(2);
                    enc_u16(&mut out, o.index() as u16);
                }
                DirStateView::Busy {
                    requester,
                    want_exclusive,
                    upgrade_reply,
                    waiting,
                    verify,
                } => {
                    out.push(3);
                    enc_u16(&mut out, requester.index() as u16);
                    out.push(u8::from(*want_exclusive) | (u8::from(*upgrade_reply) << 1));
                    enc_verify(&mut out, *verify);
                    enc_u16(&mut out, waiting.len() as u16);
                    for n in waiting {
                        enc_u16(&mut out, n.index() as u16);
                    }
                }
                DirStateView::Evicting { waiting } => {
                    out.push(4);
                    enc_u16(&mut out, waiting.len() as u16);
                    for n in waiting {
                        enc_u16(&mut out, n.index() as u16);
                    }
                }
            }
            out.push(rec.mask.len() as u8);
            for m in &rec.mask {
                enc_u16(&mut out, m.node.index() as u16);
                out.push(u8::from(m.relinquished_exclusive) | (u8::from(m.timely) << 1));
            }
            out.push(rec.pending.len() as u8);
            for m in &rec.pending {
                enc_msg(&mut out, m);
            }
            enc_u16(&mut out, rec.stale_acks.len() as u16);
            for n in rec.stale_acks {
                enc_u16(&mut out, n.index() as u16);
            }
        }
    }
    for (&(s, d), q) in &st.edges {
        out.push(b'E');
        enc_u16(&mut out, s);
        enc_u16(&mut out, d);
        for m in q {
            enc_msg(&mut out, m);
        }
    }
    for (h, q) in st.engines.iter().enumerate() {
        if !q.is_empty() {
            out.push(b'Q');
            enc_u16(&mut out, h as u16);
            for m in q {
                enc_msg(&mut out, m);
            }
        }
    }
    out
}

// --- the search -----------------------------------------------------------

const ROOT: u32 = u32::MAX;

struct Meta {
    parent: u32,
    label: String,
}

fn trace_to(meta: &[Meta], mut id: u32, last: Option<String>) -> Vec<String> {
    let mut trace = Vec::new();
    while id != ROOT {
        let m = &meta[id as usize];
        trace.push(m.label.clone());
        id = m.parent;
    }
    trace.reverse();
    trace.extend(last);
    trace
}

/// Exhaustively explores `cfg`, checking the invariant catalog in every
/// reachable state. Deterministic: identical configs yield identical
/// outcomes (state and transition counts included).
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    let initial = State {
        caches: (0..cfg.nodes)
            .map(|n| NodeCache::new(NodeId::new(n)))
            .collect(),
        dirs: (0..cfg.nodes)
            .map(|n| Directory::with_kind(NodeId::new(n), cfg.directory, cfg.nodes))
            .collect(),
        edges: BTreeMap::new(),
        engines: (0..cfg.nodes).map(|_| VecDeque::new()).collect(),
        runs: (0..cfg.nodes)
            .map(|_| Run {
                remaining: cfg.ops_per_node,
                blocked: None,
            })
            .collect(),
    };

    let mut index: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
    let mut meta: Vec<Meta> = Vec::new();
    let mut frontier: VecDeque<(State, u32)> = VecDeque::new();
    let mut transitions = 0usize;
    let mut truncated = false;

    index.insert(encode(&initial), 0);
    meta.push(Meta {
        parent: ROOT,
        label: String::new(),
    });
    if let Some((invariant, detail)) = check_state(cfg, &initial) {
        return ExploreOutcome {
            states: 1,
            transitions: 0,
            violation: Some(CounterExample {
                invariant,
                detail,
                trace: Vec::new(),
            }),
            truncated: false,
        };
    }
    frontier.push_back((initial, 0));

    while let Some((st, id)) = frontier.pop_front() {
        let cs = choices(cfg, &st);
        if cs.is_empty() {
            // Terminal state: legal only when every program ran to
            // completion with nothing in flight.
            let stuck = st
                .runs
                .iter()
                .any(|r| r.remaining > 0 || r.blocked.is_some());
            if stuck {
                return ExploreOutcome {
                    states: index.len(),
                    transitions,
                    violation: Some(CounterExample {
                        invariant: "conservation",
                        detail: "deadlock: blocked program with no deliverable message".into(),
                        trace: trace_to(&meta, id, None),
                    }),
                    truncated,
                };
            }
            continue;
        }
        for c in cs {
            transitions += 1;
            let lbl = label(&st, c);
            let next = match step(cfg, &st, c) {
                Ok(next) => next,
                Err((invariant, detail)) => {
                    return ExploreOutcome {
                        states: index.len(),
                        transitions,
                        violation: Some(CounterExample {
                            invariant,
                            detail,
                            trace: trace_to(&meta, id, Some(lbl)),
                        }),
                        truncated,
                    };
                }
            };
            let key = encode(&next);
            if index.contains_key(&key) {
                continue;
            }
            let next_id = meta.len() as u32;
            index.insert(key, next_id);
            meta.push(Meta {
                parent: id,
                label: lbl,
            });
            if let Some((invariant, detail)) = check_state(cfg, &next) {
                return ExploreOutcome {
                    states: index.len(),
                    transitions,
                    violation: Some(CounterExample {
                        invariant,
                        detail,
                        trace: trace_to(&meta, next_id, None),
                    }),
                    truncated,
                };
            }
            if index.len() >= cfg.max_states {
                truncated = true;
                frontier.clear();
                break;
            }
            frontier.push_back((next, next_id));
        }
        if truncated {
            break;
        }
    }

    ExploreOutcome {
        states: index.len(),
        transitions,
        violation: None,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_one_block_full_is_clean() {
        let out = explore(&ExploreConfig {
            nodes: 2,
            blocks: 1,
            ops_per_node: 2,
            directory: DirectoryKind::Full,
            max_states: 1_000_000,
        });
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.truncated);
        assert!(out.states > 10);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ExploreConfig {
            nodes: 2,
            blocks: 1,
            ops_per_node: 2,
            directory: DirectoryKind::LimitedPtr { pointers: 1 },
            max_states: 1_000_000,
        };
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }
}
