//! Protocol-correctness analysis: one invariant catalog, two engines.
//!
//! The paper's safety argument — speculative self-invalidation never breaks
//! coherence because the directory's §4 verification mask catches every
//! misprediction — is checked here directly rather than inferred from
//! golden outputs:
//!
//! * the **online sanitizer** ([`CoherenceChecker`], probe spec
//!   `check[:strict]`) replays the live [`SimEvent`] stream against an
//!   independent shadow directory and a node-side ground-state model,
//!   flagging any divergence;
//! * the **exhaustive explorer** ([`mod@explore`]) enumerates every reachable
//!   state of a small configuration over all message interleavings — a
//!   zero-dependency mini-Murphi for the MSI+LTP protocol — and asserts
//!   the same catalog in each state, printing a minimal counterexample
//!   trace on violation.
//!
//! # The invariant catalog
//!
//! | invariant | meaning |
//! |---|---|
//! | `swmr` | at most one writable copy; writers exclude all readers |
//! | `agreement` | cache states and tokens agree with the directory (imprecise sharer organizations checked as over-approximations) |
//! | `freshness` | no node touches a block after relinquishing it without re-fetching |
//! | `conservation` | every message sent is delivered and serviced exactly once; every `Inv` has an `InvAck`; nothing is in flight at quiescence |
//! | `mask` | every verdict the directory issues matches the checker's recomputation from ground state, and every fired prediction gets one |
//! | `shadow` | the real directory's sends, observations, and service classes match the shadow state machine (sharer decode included) |
//! | `determinism` | per-edge FIFO delivery, nondecreasing per-edge delivery cycles, same-cycle arrivals at one node pop in source order |

use std::collections::{BTreeMap, VecDeque};

use ltp_core::{BlockId, FxHashMap, JsonObject, JsonValue, NodeId, VerifyOutcome};
use ltp_dsm::{DirBlockView, DirStateView, DirectoryKind, Line, Message, MsgKind};
use ltp_sim::Cycle;

use crate::probe::{MetricsSection, Probe, ProbeCtx, ProbeFactory, RunInfo, SimEvent};

pub mod explore;
mod shadow;

pub use explore::{explore, ExploreConfig, ExploreOutcome};
use shadow::{rep_admits, ShadowDir, ShadowDirEvent, ShadowStep};

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The catalog row that failed (see the module docs).
    pub invariant: &'static str,
    /// Simulation time of the triggering event (`Cycle::ZERO` for
    /// end-of-run ground-state checks).
    pub at: Cycle,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] @{}: {}", self.invariant, self.at, self.detail)
    }
}

/// A deterministic snapshot of the machine-wide ground state (every
/// directory record and cached line), produced by
/// [`crate::Machine::view`].
#[derive(Debug, Clone, Default)]
pub struct MachineView {
    /// Machine size.
    pub nodes: u16,
    /// The directory sharer organization.
    pub directory: DirectoryKind,
    /// Every tracked directory record, sorted by `(home, block)`.
    pub dir_blocks: Vec<(NodeId, BlockId, DirBlockView)>,
    /// Every cached line, sorted by `(node, block)`.
    pub cache_lines: Vec<(NodeId, BlockId, Line)>,
    /// Messages sitting in protocol-engine queues.
    pub engine_backlog: usize,
    /// Outstanding cache misses across all nodes.
    pub cache_pending: usize,
}

/// Checks the ground-state invariant catalog against a *quiescent* machine
/// (a finished run): no transient directory state, no queued work, and full
/// cache/directory agreement. Returns every violation found.
pub fn quiescence_violations(view: &MachineView) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |invariant: &'static str, detail: String| {
        out.push(Violation {
            invariant,
            at: Cycle::ZERO,
            detail,
        });
    };
    if view.engine_backlog > 0 {
        fail(
            "conservation",
            format!("{} message(s) queued at quiescence", view.engine_backlog),
        );
    }
    if view.cache_pending > 0 {
        fail(
            "conservation",
            format!("{} miss(es) outstanding at quiescence", view.cache_pending),
        );
    }

    let dirs: FxHashMap<BlockId, &DirBlockView> = view
        .dir_blocks
        .iter()
        .map(|(_, b, rec)| (*b, rec))
        .collect();
    let lines: FxHashMap<(NodeId, BlockId), Line> = view
        .cache_lines
        .iter()
        .map(|&(p, b, l)| ((p, b), l))
        .collect();

    for &(p, b, line) in &view.cache_lines {
        let Some(rec) = dirs.get(&b) else {
            fail("agreement", format!("{p} caches untracked block {b}"));
            continue;
        };
        if line.exclusive {
            if rec.state != DirStateView::Exclusive(p) {
                fail(
                    "swmr",
                    format!(
                        "{p} holds {b} exclusive but the directory says {:?}",
                        rec.state
                    ),
                );
            }
            if line.token < rec.token {
                fail(
                    "freshness",
                    format!(
                        "{p}'s exclusive {b} token {} below home's {}",
                        line.token, rec.token
                    ),
                );
            }
        } else {
            match &rec.state {
                DirStateView::Shared { sharers, broadcast }
                    if rep_admits(view.directory, sharers, *broadcast, p) => {}
                other => fail(
                    "agreement",
                    format!("{p} holds {b} shared but the directory says {other:?}"),
                ),
            }
            if line.token != rec.token {
                fail(
                    "freshness",
                    format!(
                        "{p}'s shared {b} token {} differs from home's {}",
                        line.token, rec.token
                    ),
                );
            }
        }
    }

    for (home, b, rec) in &view.dir_blocks {
        match &rec.state {
            DirStateView::Busy { .. } => fail(
                "conservation",
                format!("{home}: {b} still Busy at quiescence"),
            ),
            DirStateView::Evicting { .. } => fail(
                "conservation",
                format!("{home}: {b} still Evicting at quiescence"),
            ),
            DirStateView::Exclusive(owner) => match lines.get(&(*owner, *b)) {
                Some(l) if l.exclusive => {}
                Some(_) => fail(
                    "agreement",
                    format!("{home}: {b} owned by {owner} whose copy is read-only"),
                ),
                None => fail(
                    "agreement",
                    format!("{home}: {b} owned by {owner} which holds no copy"),
                ),
            },
            DirStateView::Idle | DirStateView::Shared { .. } => {}
        }
        if !rec.pending.is_empty() {
            fail(
                "conservation",
                format!(
                    "{home}: {b} holds {} shelved request(s) at quiescence",
                    rec.pending.len()
                ),
            );
        }
        if !rec.stale_acks.is_empty() {
            fail(
                "conservation",
                format!(
                    "{home}: {b} still awaits {} orphaned ack(s) at quiescence",
                    rec.stale_acks.len()
                ),
            );
        }
        for m in &rec.mask {
            if lines.contains_key(&(m.node, *b)) {
                fail(
                    "mask",
                    format!(
                        "{home}: {} is masked for {b} yet still holds a copy",
                        m.node
                    ),
                );
            }
        }
    }
    out
}

/// Which wire kinds only a directory originates (the two sets are disjoint,
/// which is what lets the sanitizer attribute every `MessageSent`).
fn dir_origin(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::Inv
            | MsgKind::DataS { .. }
            | MsgKind::DataX { .. }
            | MsgKind::UpgradeAck { .. }
            | MsgKind::VerifyCorrect { .. }
    )
}

fn directory_bound(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::GetS
            | MsgKind::GetX
            | MsgKind::Upgrade
            | MsgKind::SelfInvClean
            | MsgKind::SelfInvDirty { .. }
            | MsgKind::InvAck { .. }
    )
}

/// FIFO lane a message travels on. Cross-node traffic serializes through the
/// source's network interface, so the whole `(src, dst)` edge is one FIFO.
/// Same-node messages skip the NI: requests deliver the cycle they are sent,
/// while directory sends depart later under a per-*block* service-order
/// clamp — so only `(block, direction)` lanes are ordered there.
type EdgeLane = (NodeId, NodeId, Option<(BlockId, bool)>);

/// Per-lane bookkeeping: the in-flight FIFO and the last delivery cycle
/// (kept together so one delivery costs one hash lookup).
#[derive(Debug, Default)]
struct LaneState {
    fifo: VecDeque<(Cycle, Message)>,
    last_delivery: Cycle,
}

fn edge_lane(msg: &Message) -> EdgeLane {
    let lane = if msg.src == msg.dst {
        Some((msg.block, directory_bound(msg.kind)))
    } else {
        None
    };
    (msg.src, msg.dst, lane)
}

fn fill_verify(kind: MsgKind) -> Option<VerifyOutcome> {
    match kind {
        MsgKind::DataS { verify, .. }
        | MsgKind::DataX { verify, .. }
        | MsgKind::UpgradeAck { verify, .. } => verify,
        _ => None,
    }
}

/// The online coherence sanitizer (probe spec `check`, strict variant
/// `check:strict`).
///
/// Replays the event stream of one run against the invariant catalog and
/// reports a `"check"` metrics section with violation counts and the first
/// few pieces of evidence. `strict` panics at the first violation instead,
/// turning any probe-instrumented run into a hard assertion (useful under a
/// debugger or in CI).
///
/// The checker is deterministic and works on the *merged* stream, so its
/// section is bit-identical across `--shards` values — and one of its
/// catalog rows (`determinism`) asserts exactly the delivery-order
/// guarantees that merging relies on.
#[derive(Debug)]
pub struct CoherenceChecker {
    strict: bool,
    shadows: Vec<ShadowDir>,
    /// Per home: delivered directory-bound messages not yet serviced.
    dir_inbox: Vec<VecDeque<Message>>,
    /// Per home: sends the shadow expects the real directory to emit.
    expected_sends: Vec<VecDeque<Message>>,
    /// Per home: observations the shadow expects.
    expected_events: Vec<VecDeque<ShadowDirEvent>>,
    /// Per home: shelved requests awaiting re-delivery.
    reinjects: Vec<Vec<Message>>,
    /// Per home: reinjected requests whose `DirAccepted` replayed ahead of
    /// their second delivery. The merged stream sorts same-cycle events by
    /// scheduling key, and a reinjection that finds its engine idle starts
    /// its drain in the same cycle under an earlier-sorting key — the only
    /// causal inversion the replay order permits.
    pre_served: Vec<Vec<Message>>,
    /// Per home: the in-flight service's (kind, data-class).
    in_service: Vec<Option<(MsgKind, bool)>>,
    /// Per network lane: sent-but-undelivered messages with send times,
    /// plus the lane's last delivery cycle (monotonicity check).
    edges: FxHashMap<EdgeLane, LaneState>,
    /// Previous genuine delivery, for same-cycle source-order checking.
    last_arrival: Option<(Cycle, NodeId, NodeId)>,
    /// Node-side ground state: installed copies (`true` = exclusive).
    lines: FxHashMap<(NodeId, BlockId), bool>,
    /// Per block: (holder count, exclusive-holder count) — an O(1) mirror
    /// of `lines`, so SWMR checks on fills don't scan the whole ground
    /// state. Every `lines` mutation goes through [`Self::install_line`] /
    /// [`Self::remove_line`] to keep the two in step.
    holders: FxHashMap<BlockId, (u32, u32)>,
    /// Outstanding misses.
    misses: FxHashMap<(NodeId, BlockId), bool>,
    /// Invalidations delivered but not yet acknowledged.
    owed_acks: FxHashMap<(NodeId, BlockId), u64>,
    /// Verdicts delivered to a node but not yet surfaced to its policy.
    verdicts: FxHashMap<(NodeId, BlockId), (VerifyOutcome, bool)>,
    events_seen: u64,
    violations: u64,
    by_invariant: BTreeMap<&'static str, u64>,
    first: Vec<String>,
}

const EVIDENCE_CAP: usize = 8;

impl CoherenceChecker {
    /// Builds a sanitizer for a `nodes`-node machine running `kind`
    /// directories.
    pub fn new(nodes: u16, kind: DirectoryKind, strict: bool) -> Self {
        let n = usize::from(nodes);
        CoherenceChecker {
            strict,
            shadows: (0..nodes)
                .map(|h| ShadowDir::new(NodeId::new(h), kind, nodes))
                .collect(),
            dir_inbox: vec![VecDeque::new(); n],
            expected_sends: vec![VecDeque::new(); n],
            expected_events: vec![VecDeque::new(); n],
            reinjects: vec![Vec::new(); n],
            pre_served: vec![Vec::new(); n],
            in_service: vec![None; n],
            edges: FxHashMap::default(),
            last_arrival: None,
            lines: FxHashMap::default(),
            holders: FxHashMap::default(),
            misses: FxHashMap::default(),
            owed_acks: FxHashMap::default(),
            verdicts: FxHashMap::default(),
            events_seen: 0,
            violations: 0,
            by_invariant: BTreeMap::new(),
            first: Vec::new(),
        }
    }

    fn fail(&mut self, invariant: &'static str, at: Cycle, detail: String) {
        self.violations += 1;
        *self.by_invariant.entry(invariant).or_insert(0) += 1;
        if self.first.len() < EVIDENCE_CAP {
            self.first.push(format!("[{invariant}] @{at}: {detail}"));
        }
        assert!(
            !self.strict,
            "coherence violation [{invariant}] at cycle {at}: {detail}"
        );
    }

    fn take_step(&mut self, home: NodeId, at: Cycle, step: ShadowStep) {
        let h = home.index();
        for v in step.violations {
            self.fail("shadow", at, v);
        }
        self.expected_sends[h].extend(step.sends);
        self.expected_events[h].extend(step.events);
        self.reinjects[h].extend(step.reinject);
        self.in_service[h] = self.in_service[h].map(|(k, _)| (k, step.data));
    }

    fn expect_event(&mut self, home: NodeId, at: Cycle, observed: ShadowDirEvent) {
        match self.expected_events[home.index()].pop_front() {
            Some(want) if want == observed => {}
            Some(want) => self.fail(
                "shadow",
                at,
                format!("{home} observed {observed:?} where the shadow expected {want:?}"),
            ),
            None => self.fail(
                "shadow",
                at,
                format!("{home} observed {observed:?} the shadow did not expect"),
            ),
        }
    }

    /// Installs (or upgrades) `p`'s copy of `b`, keeping the per-block
    /// holder summary in step with `lines`.
    fn install_line(&mut self, p: NodeId, b: BlockId, exclusive: bool) {
        let prev = self.lines.insert((p, b), exclusive);
        let e = self.holders.entry(b).or_insert((0, 0));
        e.0 += u32::from(prev.is_none());
        e.1 = e.1 - u32::from(prev == Some(true)) + u32::from(exclusive);
    }

    /// Removes `p`'s copy of `b` (if any), returning whether it was
    /// exclusive, and keeps the holder summary in step.
    fn remove_line(&mut self, p: NodeId, b: BlockId) -> Option<bool> {
        let prev = self.lines.remove(&(p, b));
        if let Some(ex) = prev {
            if let Some(e) = self.holders.get_mut(&b) {
                e.0 -= 1;
                e.1 -= u32::from(ex);
            }
        }
        prev
    }

    /// Names one holder of `b` other than `p` for violation evidence (the
    /// slow scan only runs once a violation is already established).
    fn holder_besides(&self, p: NodeId, b: BlockId, exclusive_only: bool) -> String {
        self.lines
            .iter()
            .find(|&(&(q, qb), &ex)| qb == b && q != p && (ex || !exclusive_only))
            .map_or_else(|| "another node".to_string(), |(&(q, _), _)| q.to_string())
    }

    fn deliver_fill(&mut self, at: Cycle, msg: Message) {
        let p = msg.dst;
        let b = msg.block;
        if self.misses.remove(&(p, b)).is_none() {
            self.fail(
                "conservation",
                at,
                format!("{p} received a fill for {b} with no miss outstanding"),
            );
        }
        let exclusive = !matches!(msg.kind, MsgKind::DataS { .. });
        let own = self.lines.get(&(p, b)).copied();
        let (total, total_exclusive) = self.holders.get(&b).copied().unwrap_or((0, 0));
        let others = total - u32::from(own.is_some());
        let others_exclusive = total_exclusive - u32::from(own == Some(true));
        if exclusive {
            if others > 0 {
                let q = self.holder_besides(p, b, false);
                self.fail(
                    "swmr",
                    at,
                    format!("{p} granted {b} exclusive while {q} still holds a copy"),
                );
            }
        } else if others_exclusive > 0 {
            let q = self.holder_besides(p, b, true);
            self.fail(
                "swmr",
                at,
                format!("{p} granted {b} shared while {q} holds it exclusive"),
            );
        }
        if matches!(msg.kind, MsgKind::UpgradeAck { .. }) && own.is_none() {
            self.fail(
                "agreement",
                at,
                format!("{p} received an UpgradeAck for {b} with no installed copy"),
            );
        }
        self.install_line(p, b, exclusive);
        if let Some(v) = fill_verify(msg.kind) {
            if self.verdicts.insert((p, b), (v, false)).is_some() {
                self.fail(
                    "mask",
                    at,
                    format!("{p} received a verdict for {b} while one was still unresolved"),
                );
            }
        }
    }

    fn on_delivered(&mut self, at: Cycle, msg: Message) {
        // A directory reinjection is a second delivery of the same message
        // with no second send: exempt from the edge bookkeeping.
        if directory_bound(msg.kind) {
            let h = msg.dst.index();
            if let Some(i) = self.pre_served[h].iter().position(|m| *m == msg) {
                // The service already replayed (same-cycle key inversion);
                // this is the matching late delivery event.
                self.pre_served[h].remove(i);
                return;
            }
            if let Some(i) = self.reinjects[h].iter().position(|m| *m == msg) {
                self.reinjects[h].remove(i);
                self.dir_inbox[h].push_back(msg);
                return;
            }
        }
        let lane = self.edges.entry(edge_lane(&msg)).or_default();
        let prev = lane.last_delivery;
        lane.last_delivery = at;
        match lane.fifo.pop_front() {
            Some((sent, m)) if m == msg => {
                if at < sent {
                    self.fail(
                        "determinism",
                        at,
                        format!("{msg:?} delivered at {at}, before its send at {sent}"),
                    );
                }
            }
            Some((_, m)) => self.fail(
                "determinism",
                at,
                format!(
                    "edge {}->{} delivered {msg:?} ahead of {m:?}",
                    msg.src, msg.dst
                ),
            ),
            None => self.fail(
                "conservation",
                at,
                format!("{msg:?} delivered but never sent"),
            ),
        }
        if at < prev {
            self.fail(
                "determinism",
                at,
                format!(
                    "edge {}->{} delivery time regressed from {prev} to {at}",
                    msg.src, msg.dst
                ),
            );
        }
        if let Some((pat, pdst, psrc)) = self.last_arrival {
            if pat == at && pdst == msg.dst && psrc > msg.src {
                self.fail(
                    "determinism",
                    at,
                    format!(
                        "same-cycle arrivals at {} popped out of source order ({psrc} before {})",
                        msg.dst, msg.src
                    ),
                );
            }
        }
        self.last_arrival = Some((at, msg.dst, msg.src));

        if directory_bound(msg.kind) {
            self.dir_inbox[msg.dst.index()].push_back(msg);
            return;
        }
        match msg.kind {
            MsgKind::DataS { .. } | MsgKind::DataX { .. } | MsgKind::UpgradeAck { .. } => {
                self.deliver_fill(at, msg);
            }
            MsgKind::VerifyCorrect { timely } => {
                if self
                    .verdicts
                    .insert((msg.dst, msg.block), (VerifyOutcome::Correct, timely))
                    .is_some()
                {
                    self.fail(
                        "mask",
                        at,
                        format!(
                            "{} received a verdict for {} while one was still unresolved",
                            msg.dst, msg.block
                        ),
                    );
                }
            }
            MsgKind::Inv => {} // node-side effects arrive as `Invalidated`
            other => self.fail(
                "conservation",
                at,
                format!("{} received non-cache message {other:?}", msg.dst),
            ),
        }
    }

    fn on_sent(&mut self, at: Cycle, msg: Message) {
        self.edges
            .entry(edge_lane(&msg))
            .or_default()
            .fifo
            .push_back((at, msg));
        if dir_origin(msg.kind) {
            let h = msg.src.index();
            match self.expected_sends[h].pop_front() {
                Some(want) if want == msg => {}
                Some(want) => self.fail(
                    "shadow",
                    at,
                    format!(
                        "{} sent {msg:?} where the shadow expected {want:?}",
                        msg.src
                    ),
                ),
                None => self.fail(
                    "shadow",
                    at,
                    format!("{} sent {msg:?} the shadow did not expect", msg.src),
                ),
            }
            return;
        }
        match msg.kind {
            MsgKind::InvAck { .. } => {
                let owed = self.owed_acks.entry((msg.src, msg.block)).or_insert(0);
                if *owed == 0 {
                    self.fail(
                        "conservation",
                        at,
                        format!(
                            "{} acknowledged an invalidation of {} it never received",
                            msg.src, msg.block
                        ),
                    );
                } else {
                    *owed -= 1;
                }
            }
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => {
                if !self.misses.contains_key(&(msg.src, msg.block)) {
                    self.fail(
                        "conservation",
                        at,
                        format!(
                            "{} requested {} with no miss outstanding",
                            msg.src, msg.block
                        ),
                    );
                }
            }
            MsgKind::SelfInvClean | MsgKind::SelfInvDirty { .. } => {}
            _ => unreachable!("dir-origin kinds handled above"),
        }
    }

    fn on_accepted(&mut self, at: Cycle, home: NodeId, msg: Message) {
        let h = home.index();
        if let Some(stale) = self.expected_sends[h].pop_front() {
            self.fail(
                "shadow",
                at,
                format!("{home} never sent the expected {stale:?}"),
            );
            self.expected_sends[h].clear();
        }
        if let Some(stale) = self.expected_events[h].pop_front() {
            self.fail(
                "shadow",
                at,
                format!("{home} never observed the expected {stale:?}"),
            );
            self.expected_events[h].clear();
        }
        match self.dir_inbox[h].front() {
            Some(front) if *front == msg => {
                self.dir_inbox[h].pop_front();
            }
            Some(front) => {
                let front = *front;
                self.fail(
                    "conservation",
                    at,
                    format!("{home} serviced {msg:?} ahead of the delivered {front:?}"),
                );
                if let Some(i) = self.dir_inbox[h].iter().position(|m| *m == msg) {
                    self.dir_inbox[h].remove(i);
                }
            }
            // A reinjection that finds its engine idle is serviced in the
            // same cycle, and the replay's key order puts the service ahead
            // of the second delivery: consume the reinjection here and let
            // `on_delivered` absorb the late delivery event.
            None if self.reinjects[h].contains(&msg) => {
                let i = self.reinjects[h]
                    .iter()
                    .position(|m| *m == msg)
                    .expect("containment checked");
                self.reinjects[h].remove(i);
                self.pre_served[h].push(msg);
            }
            None => self.fail(
                "conservation",
                at,
                format!("{home} serviced {msg:?} which was never delivered"),
            ),
        }
        self.in_service[h] = Some((msg.kind, false));
        let step = self.shadows[h].process(msg);
        self.take_step(home, at, step);
    }
}

impl Probe for CoherenceChecker {
    #[allow(clippy::too_many_lines)]
    fn on_event(&mut self, ctx: &ProbeCtx, event: &SimEvent) {
        self.events_seen += 1;
        let at = ctx.now;
        match *event {
            SimEvent::MessageSent { msg } => self.on_sent(at, msg),
            SimEvent::MessageDelivered { msg } => self.on_delivered(at, msg),
            SimEvent::DirAccepted { home, msg } => self.on_accepted(at, home, msg),
            SimEvent::MessageServiced {
                home, kind, data, ..
            } => match self.in_service[home.index()].take() {
                Some((k, d)) if k == kind && d == data => {}
                Some((k, d)) => self.fail(
                    "shadow",
                    at,
                    format!(
                        "{home} reported service of {kind:?} (data={data}) but accepted {k:?} (data={d})"
                    ),
                ),
                None => self.fail(
                    "conservation",
                    at,
                    format!("{home} reported a service it never accepted"),
                ),
            },
            SimEvent::InvalidationSent { home, to, .. } => {
                self.expect_event(home, at, ShadowDirEvent::InvSent(to));
            }
            SimEvent::InvalidationAcked {
                home,
                from,
                had_copy,
                ..
            } => {
                self.expect_event(home, at, ShadowDirEvent::InvAcked { from, had_copy });
            }
            SimEvent::BroadcastOverflow { home, .. } => {
                self.expect_event(home, at, ShadowDirEvent::Overflow);
            }
            SimEvent::DirEntryEvicted {
                home,
                block,
                invalidations,
            } => {
                self.expect_event(
                    home,
                    at,
                    ShadowDirEvent::Evicted {
                        block,
                        invalidations,
                    },
                );
            }
            SimEvent::StaleIgnored { home, from, .. } => {
                self.expect_event(home, at, ShadowDirEvent::Stale(from));
            }
            SimEvent::Invalidated {
                node,
                block,
                had_copy,
            } => {
                if had_copy != self.remove_line(node, block).is_some() {
                    self.fail(
                        "agreement",
                        at,
                        format!(
                            "{node} reported had_copy={had_copy} for {block}, ground state disagrees"
                        ),
                    );
                }
                *self.owed_acks.entry((node, block)).or_insert(0) += 1;
            }
            SimEvent::SelfInvalidation { node, block, dirty } => {
                if self.misses.contains_key(&(node, block)) {
                    self.fail(
                        "conservation",
                        at,
                        format!("{node} self-invalidated {block} mid-transaction"),
                    );
                }
                match self.remove_line(node, block) {
                    Some(exclusive) => {
                        if dirty != exclusive {
                            self.fail(
                                "agreement",
                                at,
                                format!(
                                    "{node} self-invalidated {block} dirty={dirty} but held it exclusive={exclusive}"
                                ),
                            );
                        }
                    }
                    None => self.fail(
                        "freshness",
                        at,
                        format!("{node} self-invalidated {block} without an installed copy"),
                    ),
                }
            }
            SimEvent::PredictionVerified {
                node,
                block,
                outcome,
                timely,
            } => match self.verdicts.remove(&(node, block)) {
                Some((o, t)) if o == outcome && t == timely => {}
                Some((o, t)) => self.fail(
                    "mask",
                    at,
                    format!(
                        "{node}'s verdict for {block} reported as {outcome:?}/timely={timely}, directory issued {o:?}/timely={t}"
                    ),
                ),
                None => self.fail(
                    "mask",
                    at,
                    format!("{node} surfaced a verdict for {block} the directory never issued"),
                ),
            },
            SimEvent::CacheHit {
                node,
                block,
                is_write,
                exclusive,
                ..
            } => {
                if self.misses.contains_key(&(node, block)) {
                    self.fail(
                        "conservation",
                        at,
                        format!("{node} hit {block} while a miss is outstanding"),
                    );
                }
                match self.lines.get(&(node, block)) {
                    Some(&ex) => {
                        if ex != exclusive {
                            self.fail(
                                "agreement",
                                at,
                                format!("{node} hit {block} exclusive={exclusive}, ground state says {ex}"),
                            );
                        }
                        if is_write && !ex {
                            self.fail(
                                "swmr",
                                at,
                                format!("{node} wrote {block} without write permission"),
                            );
                        }
                    }
                    None => self.fail(
                        "freshness",
                        at,
                        format!("{node} hit {block} after relinquishing it"),
                    ),
                }
            }
            SimEvent::CacheMiss {
                node,
                block,
                is_write,
                ..
            } => {
                if self
                    .misses
                    .insert((node, block), is_write)
                    .is_some()
                {
                    self.fail(
                        "conservation",
                        at,
                        format!("{node} missed {block} while a miss is outstanding"),
                    );
                }
                match self.lines.get(&(node, block)) {
                    Some(&ex) if !is_write => self.fail(
                        "agreement",
                        at,
                        format!("{node} read-missed {block} despite an installed copy (exclusive={ex})"),
                    ),
                    Some(true) => self.fail(
                        "agreement",
                        at,
                        format!("{node} write-missed {block} despite holding it exclusive"),
                    ),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn finish(mut self: Box<Self>) -> Option<MetricsSection> {
        let mut leftovers: Vec<(&'static str, String)> = Vec::new();
        for (edge, lane) in self.edges.iter().filter(|(_, l)| !l.fifo.is_empty()) {
            leftovers.push((
                "conservation",
                format!(
                    "{} message(s) in flight {}->{} at quiescence",
                    lane.fifo.len(),
                    edge.0,
                    edge.1
                ),
            ));
        }
        for (h, q) in self.dir_inbox.iter().enumerate() {
            if !q.is_empty() {
                leftovers.push((
                    "conservation",
                    format!("home {h}: {} delivered message(s) never serviced", q.len()),
                ));
            }
        }
        for (h, r) in self.reinjects.iter().enumerate() {
            if !r.is_empty() {
                leftovers.push((
                    "conservation",
                    format!(
                        "home {h}: {} shelved request(s) never re-delivered",
                        r.len()
                    ),
                ));
            }
        }
        for (h, r) in self.pre_served.iter().enumerate() {
            if !r.is_empty() {
                leftovers.push((
                    "conservation",
                    format!(
                        "home {h}: {} serviced reinjection(s) with no matching delivery",
                        r.len()
                    ),
                ));
            }
        }
        for (&(p, b), &owed) in self.owed_acks.iter().filter(|&(_, &o)| o > 0) {
            leftovers.push((
                "conservation",
                format!("{p}: {owed} invalidation(s) of {b} never acknowledged"),
            ));
        }
        for &(p, b) in self.misses.keys() {
            leftovers.push(("conservation", format!("{p}: miss on {b} never filled")));
        }
        for (&(p, b), &(o, _)) in &self.verdicts {
            leftovers.push((
                "mask",
                format!("{p}: delivered verdict {o:?} for {b} never surfaced"),
            ));
        }
        for (h, q) in self.expected_sends.iter().enumerate() {
            if !q.is_empty() {
                leftovers.push((
                    "shadow",
                    format!("home {h}: {} expected send(s) never emitted", q.len()),
                ));
            }
        }
        let unsettled: Vec<String> = self
            .shadows
            .iter()
            .filter_map(ShadowDir::unsettled)
            .collect();
        for u in unsettled {
            leftovers.push(("conservation", u));
        }
        leftovers.sort();
        for (invariant, detail) in leftovers {
            self.fail(invariant, Cycle::ZERO, detail);
        }

        let mut counts = JsonObject::new();
        for (k, v) in &self.by_invariant {
            counts = counts.field(k, *v);
        }
        Some(MetricsSection::new(
            if self.strict { "check:strict" } else { "check" },
            JsonObject::new()
                .field("events", self.events_seen)
                .field("violations", self.violations)
                .field("invariants", counts.build())
                .field(
                    "first",
                    JsonValue::from(
                        self.first
                            .iter()
                            .map(|s| JsonValue::from(s.as_str()))
                            .collect::<Vec<_>>(),
                    ),
                )
                .build(),
        ))
    }
}

/// Factory for the `check[:strict]` probe spec.
#[derive(Debug, Clone, Copy)]
pub struct CheckerFactory {
    /// Panic at the first violation instead of reporting counts.
    pub strict: bool,
}

impl ProbeFactory for CheckerFactory {
    fn name(&self) -> &str {
        "check"
    }

    fn spec(&self) -> String {
        if self.strict {
            "check:strict".to_string()
        } else {
            "check".to_string()
        }
    }

    fn build(&self, run: &RunInfo) -> Box<dyn Probe> {
        Box::new(CoherenceChecker::new(
            run.workload.nodes,
            run.directory,
            self.strict,
        ))
    }
}
