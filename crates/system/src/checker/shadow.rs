//! A shadow directory: an independent re-derivation of the protocol's
//! directory state machine, used by the online sanitizer to predict every
//! message and observation the real [`ltp_dsm::Directory`] must produce.
//!
//! The shadow is written from the protocol *specification* (the `ltp-dsm`
//! module docs and the paper's §2/§4), not by calling into the production
//! code: its sharer decode, mask resolution, and race arms are spelled out
//! again here so that a bug planted in one copy (see `ltp_dsm::mutation`)
//! disagrees with the other. Divergence is reported by the checker as a
//! `shadow` violation, with the first differing message as evidence.

use std::collections::VecDeque;

use ltp_core::{BlockId, FxHashMap, NodeId, SharerSet, VerifyOutcome};
use ltp_dsm::{DirectoryKind, Message, MsgKind};

/// What the shadow expects the real directory to observe/emit for one
/// serviced message.
#[derive(Debug, Default)]
pub(crate) struct ShadowStep {
    /// Messages the home must send, in order.
    pub sends: Vec<Message>,
    /// Shelved requests the home must re-present, in order.
    pub reinject: Vec<Message>,
    /// Whether the service must be classed as a data service.
    pub data: bool,
    /// Directory observations (`InvalidationSent` etc.), in order.
    pub events: Vec<ShadowDirEvent>,
    /// Ground-state violations detected *while* processing (promoted
    /// `debug_assert!`s: token regressions, impossible arms).
    pub violations: Vec<String>,
}

/// Mirror of [`ltp_dsm::DirEvent`] for expectation matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShadowDirEvent {
    InvSent(NodeId),
    InvAcked { from: NodeId, had_copy: bool },
    Overflow,
    Stale(NodeId),
    Evicted { block: BlockId, invalidations: u16 },
}

/// The sharer representation as the spec defines it: node bits for
/// `full`/`ptr`/`sparse`, cluster bits for `coarse`, plus the
/// pointer-overflow broadcast flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Rep {
    set: SharerSet,
    broadcast: bool,
}

/// The bit `node` occupies in the stored set.
fn bit_of(kind: DirectoryKind, node: NodeId) -> NodeId {
    match kind {
        DirectoryKind::Full | DirectoryKind::LimitedPtr { .. } | DirectoryKind::Sparse { .. } => {
            node
        }
        DirectoryKind::Coarse { cluster } => {
            NodeId::new((node.index() / usize::from(cluster.max(1))) as u16)
        }
    }
}

/// Whether the representation is exact right now (and may thus prove a
/// node's membership or forget a departing sharer). Sparse tracked entries
/// are exact full maps — imprecision shows up as evictions, not as
/// over-approximate decode.
fn exact_now(kind: DirectoryKind, r: &Rep) -> bool {
    match kind {
        DirectoryKind::Full | DirectoryKind::Sparse { .. } => true,
        DirectoryKind::Coarse { cluster } => cluster <= 1,
        DirectoryKind::LimitedPtr { .. } => !r.broadcast,
    }
}

/// Whether the representation admits `node` as a possible sharer.
pub(crate) fn rep_admits(
    kind: DirectoryKind,
    set: &SharerSet,
    broadcast: bool,
    node: NodeId,
) -> bool {
    broadcast || set.contains(bit_of(kind, node))
}

fn insert_sharer(kind: DirectoryKind, r: &mut Rep, node: NodeId) -> bool {
    match kind {
        DirectoryKind::Full | DirectoryKind::Coarse { .. } | DirectoryKind::Sparse { .. } => {
            r.set.insert(bit_of(kind, node));
            false
        }
        DirectoryKind::LimitedPtr { pointers } => {
            if r.broadcast {
                return false;
            }
            r.set.insert(node);
            if r.set.len() > usize::from(pointers) {
                r.set.clear();
                r.broadcast = true;
                true
            } else {
                false
            }
        }
    }
}

/// The exact node set an invalidation round must target: the stored
/// representation expanded to node granularity, minus the requester. This
/// is the canonical decode a mutated production decode must disagree with.
pub(crate) fn decode_targets(
    kind: DirectoryKind,
    total: u16,
    set: &SharerSet,
    broadcast: bool,
    exclude: NodeId,
) -> SharerSet {
    let mut targets = SharerSet::new();
    match kind {
        DirectoryKind::Full | DirectoryKind::Sparse { .. } => targets = set.clone(),
        DirectoryKind::Coarse { cluster } => {
            let k = cluster.max(1);
            for c in set {
                let base = c.index() as u16 * k;
                for node in base..(base + k).min(total) {
                    targets.insert(NodeId::new(node));
                }
            }
        }
        DirectoryKind::LimitedPtr { .. } => {
            if broadcast {
                for node in 0..total {
                    targets.insert(NodeId::new(node));
                }
            } else {
                targets = set.clone();
            }
        }
    }
    targets.remove(exclude);
    targets
}

#[derive(Debug, Clone)]
enum SState {
    Idle,
    Shared(Rep),
    Exclusive(NodeId),
    Busy {
        requester: NodeId,
        want_exclusive: bool,
        upgrade_reply: bool,
        waiting: SharerSet,
        verify: Option<VerifyOutcome>,
    },
    /// Sparse only: an evicted entry collecting its holders' acks before
    /// falling back to Idle.
    Evicting {
        waiting: SharerSet,
    },
}

#[derive(Debug, Clone, Copy)]
struct SMask {
    node: NodeId,
    relinquished_exclusive: bool,
    timely: bool,
}

#[derive(Debug)]
struct SBlock {
    state: SState,
    version: u32,
    token: u64,
    mask: Vec<SMask>,
    shelved: VecDeque<Message>,
    /// Nodes owing an orphaned `InvAck` (self-invalidation crossed the Inv);
    /// mirrors the real directory's stale-ack filter.
    stale_acks: SharerSet,
    /// Sparse replacement recency: the home's service tick of the last
    /// message processed for this block.
    last_use: u64,
}

impl Default for SBlock {
    fn default() -> Self {
        SBlock {
            state: SState::Idle,
            version: 0,
            token: 0,
            mask: Vec::new(),
            shelved: VecDeque::new(),
            stale_acks: SharerSet::new(),
            last_use: 0,
        }
    }
}

/// One home's shadow directory.
#[derive(Debug)]
pub(crate) struct ShadowDir {
    home: NodeId,
    kind: DirectoryKind,
    total: u16,
    blocks: FxHashMap<BlockId, SBlock>,
    /// Monotonic service tick (the sparse LRU clock).
    tick: u64,
}

impl ShadowDir {
    pub fn new(home: NodeId, kind: DirectoryKind, total: u16) -> Self {
        ShadowDir {
            home,
            kind,
            total,
            blocks: FxHashMap::default(),
            tick: 0,
        }
    }

    /// Whether any block is mid-transaction or holding shelved requests —
    /// must be false at quiescence.
    pub fn unsettled(&self) -> Option<String> {
        for (b, rec) in &self.blocks {
            if matches!(rec.state, SState::Busy { .. }) {
                return Some(format!("{}: {b} still Busy at quiescence", self.home));
            }
            if matches!(rec.state, SState::Evicting { .. }) {
                return Some(format!("{}: {b} still Evicting at quiescence", self.home));
            }
            if !rec.shelved.is_empty() {
                return Some(format!(
                    "{}: {b} holds {} shelved request(s) at quiescence",
                    self.home,
                    rec.shelved.len()
                ));
            }
            if !rec.stale_acks.is_empty() {
                return Some(format!(
                    "{}: {b} still awaits {} orphaned ack(s) at quiescence",
                    self.home,
                    rec.stale_acks.len()
                ));
            }
        }
        None
    }

    /// Processes one serviced message, returning everything the real
    /// directory is obliged to do in response.
    pub fn process(&mut self, msg: Message) -> ShadowStep {
        let mut step = ShadowStep::default();
        if msg.dst != self.home {
            step.violations.push(format!(
                "{} serviced {msg:?} routed to the wrong home",
                self.home
            ));
            return step;
        }
        self.tick += 1;
        let tick = self.tick;
        self.blocks.entry(msg.block).or_default().last_use = tick;
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => self.request(msg, &mut step),
            MsgKind::SelfInvClean => self.self_inv(msg, None, &mut step),
            MsgKind::SelfInvDirty { token } => self.self_inv(msg, Some(token), &mut step),
            MsgKind::InvAck {
                had_copy,
                dirty_token,
            } => self.inv_ack(msg, had_copy, dirty_token, &mut step),
            other => step.violations.push(format!(
                "{}: non-protocol message {other:?} serviced",
                self.home
            )),
        }
        step
    }

    /// §4 mask resolution against an arriving request: the requester's own
    /// entry yields a piggybacked Premature; entries conflicting with the
    /// request (exclusive relinquish, or any relinquish vs a write) yield
    /// immediate `VerifyCorrect` notifications; read-vs-read stays pending.
    fn resolve_mask(
        &mut self,
        block: BlockId,
        requester: NodeId,
        write: bool,
    ) -> (Option<VerifyOutcome>, Vec<Message>) {
        let home = self.home;
        let rec = self.blocks.entry(block).or_default();
        let mut piggyback = None;
        let mut notify = Vec::new();
        rec.mask.retain(|m| {
            if m.node == requester {
                piggyback = Some(VerifyOutcome::Premature);
                false
            } else if m.relinquished_exclusive || write {
                notify.push(Message::new(
                    home,
                    m.node,
                    block,
                    MsgKind::VerifyCorrect { timely: m.timely },
                ));
                false
            } else {
                true
            }
        });
        (piggyback, notify)
    }

    /// Sparse replacement, as the spec defines it: when servicing a request
    /// whose block is untracked while the home already tracks `E` non-Idle
    /// blocks, the least-recently-serviced stable entry (ties broken by
    /// block id) is evicted — every holder is invalidated and the entry
    /// goes Evicting until the acks drain.
    fn predict_eviction(&mut self, block: BlockId, step: &mut ShadowStep) {
        let DirectoryKind::Sparse { entries } = self.kind else {
            return;
        };
        if !matches!(
            self.blocks.get(&block).map(|r| &r.state),
            None | Some(SState::Idle)
        ) {
            return;
        }
        let occupied = self
            .blocks
            .values()
            .filter(|r| !matches!(r.state, SState::Idle))
            .count();
        if occupied < usize::from(entries) {
            return;
        }
        let victim = self
            .blocks
            .iter()
            .filter(|(&b, r)| {
                b != block && matches!(r.state, SState::Shared(_) | SState::Exclusive(_))
            })
            .min_by_key(|(&b, r)| (r.last_use, b))
            .map(|(&b, _)| b);
        let Some(victim) = victim else {
            return;
        };
        let home = self.home;
        let rec = self.blocks.get_mut(&victim).expect("victim exists");
        let targets = match &rec.state {
            SState::Shared(r) => r.set.clone(),
            SState::Exclusive(owner) => SharerSet::from_node(*owner),
            _ => unreachable!("victims are stable"),
        };
        step.events.push(ShadowDirEvent::Evicted {
            block: victim,
            invalidations: targets.len() as u16,
        });
        for n in &targets {
            step.sends.push(Message::new(home, n, victim, MsgKind::Inv));
        }
        rec.state = SState::Evicting { waiting: targets };
    }

    #[allow(clippy::too_many_lines)]
    fn request(&mut self, msg: Message, step: &mut ShadowStep) {
        let block = msg.block;
        let home = self.home;
        let kind = self.kind;
        let total = self.total;
        if matches!(
            self.blocks.entry(block).or_default().state,
            SState::Busy { .. } | SState::Evicting { .. }
        ) {
            // Requests against Busy/Evicting blocks are shelved unresolved.
            self.blocks
                .get_mut(&block)
                .expect("just inserted")
                .shelved
                .push_back(msg);
            return;
        }
        self.predict_eviction(block, step);
        let write = matches!(msg.kind, MsgKind::GetX | MsgKind::Upgrade);
        let (verify, mut notify) = self.resolve_mask(block, msg.src, write);
        let rec = self.blocks.get_mut(&block).expect("resolved above");
        match (&mut rec.state, msg.kind) {
            (SState::Idle, MsgKind::GetS) => {
                let mut r = Rep::default();
                insert_sharer(kind, &mut r, msg.src);
                rec.state = SState::Shared(r);
                step.data = true;
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: rec.version,
                        token: rec.token,
                        verify,
                    },
                ));
            }
            (SState::Shared(r), MsgKind::GetS) => {
                if insert_sharer(kind, r, msg.src) {
                    step.events.push(ShadowDirEvent::Overflow);
                }
                step.data = true;
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: rec.version,
                        token: rec.token,
                        verify,
                    },
                ));
            }
            (SState::Exclusive(owner), MsgKind::GetS) => {
                let owner = *owner;
                if owner == msg.src {
                    step.violations
                        .push(format!("{home}: owner {owner} re-requested {block}"));
                }
                rec.state = SState::Busy {
                    requester: msg.src,
                    want_exclusive: false,
                    upgrade_reply: false,
                    waiting: SharerSet::from_node(owner),
                    verify,
                };
                step.events.push(ShadowDirEvent::InvSent(owner));
                step.sends
                    .push(Message::new(home, owner, block, MsgKind::Inv));
            }
            (SState::Idle, MsgKind::GetX | MsgKind::Upgrade) => {
                rec.version += 1;
                rec.state = SState::Exclusive(msg.src);
                step.data = true;
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataX {
                        version: rec.version,
                        token: rec.token,
                        verify,
                    },
                ));
            }
            (SState::Shared(r), MsgKind::Upgrade)
                if exact_now(kind, r) && r.set.contains(msg.src) =>
            {
                if r.set.len() == 1 {
                    // Sole-sharer upgrade: the migratory pattern.
                    rec.version += 1;
                    rec.state = SState::Exclusive(msg.src);
                    step.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::UpgradeAck {
                            version: rec.version,
                            migratory: true,
                            verify,
                        },
                    ));
                } else {
                    let waiting = decode_targets(kind, total, &r.set, r.broadcast, msg.src);
                    for n in &waiting {
                        step.events.push(ShadowDirEvent::InvSent(n));
                        step.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    rec.state = SState::Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: true,
                        waiting,
                        verify,
                    };
                }
            }
            (SState::Shared(r), MsgKind::GetX | MsgKind::Upgrade) => {
                let waiting = decode_targets(kind, total, &r.set, r.broadcast, msg.src);
                if waiting.is_empty() {
                    rec.version += 1;
                    rec.state = SState::Exclusive(msg.src);
                    step.data = true;
                    step.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::DataX {
                            version: rec.version,
                            token: rec.token,
                            verify,
                        },
                    ));
                } else {
                    for n in &waiting {
                        step.events.push(ShadowDirEvent::InvSent(n));
                        step.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    rec.state = SState::Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: false,
                        waiting,
                        verify,
                    };
                }
            }
            (SState::Exclusive(owner), MsgKind::GetX | MsgKind::Upgrade) => {
                let owner = *owner;
                if owner == msg.src {
                    step.violations.push(format!(
                        "{home}: owner {owner} re-requested {block} exclusively"
                    ));
                }
                rec.state = SState::Busy {
                    requester: msg.src,
                    want_exclusive: true,
                    upgrade_reply: false,
                    waiting: SharerSet::from_node(owner),
                    verify,
                };
                step.events.push(ShadowDirEvent::InvSent(owner));
                step.sends
                    .push(Message::new(home, owner, block, MsgKind::Inv));
            }
            (state, k) => step.violations.push(format!(
                "{home}: request {k:?} in impossible state {state:?}"
            )),
        }
        step.sends.append(&mut notify);
    }

    fn self_inv(&mut self, msg: Message, writeback: Option<u64>, step: &mut ShadowStep) {
        let block = msg.block;
        let home = self.home;
        let kind = self.kind;
        let rec = self.blocks.entry(block).or_default();
        match &mut rec.state {
            SState::Shared(r)
                if writeback.is_none() && rep_admits(kind, &r.set, r.broadcast, msg.src) =>
            {
                if exact_now(kind, r) {
                    r.set.remove(msg.src);
                }
                if !r.broadcast && r.set.is_empty() {
                    rec.state = SState::Idle;
                }
                rec.mask.push(SMask {
                    node: msg.src,
                    relinquished_exclusive: false,
                    timely: true,
                });
            }
            SState::Exclusive(owner) if *owner == msg.src => {
                let Some(token) = writeback else {
                    step.violations.push(format!(
                        "{home}: exclusive relinquish of {block} without writeback"
                    ));
                    return;
                };
                if token < rec.token {
                    step.violations.push(format!(
                        "{home}: {block} writeback token {token} regressed below {}",
                        rec.token
                    ));
                }
                rec.token = token;
                rec.state = SState::Idle;
                rec.mask.push(SMask {
                    node: msg.src,
                    relinquished_exclusive: true,
                    timely: true,
                });
                step.data = true;
            }
            SState::Busy { waiting, .. } if waiting.contains(msg.src) => {
                // Crossed the Inv in flight: serves as the awaited ack, but
                // the verdict is late — the conflicting request is already
                // in service. The node's real ack is now an orphan.
                waiting.remove(msg.src);
                rec.stale_acks.insert(msg.src);
                if let Some(token) = writeback {
                    if token < rec.token {
                        step.violations.push(format!(
                            "{home}: {block} writeback token {token} regressed below {}",
                            rec.token
                        ));
                    }
                    rec.token = token;
                    step.data = true;
                }
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::VerifyCorrect { timely: false },
                ));
                self.finish_busy(block, step);
            }
            SState::Evicting { waiting } if waiting.contains(msg.src) => {
                // Crossed an eviction's Inv: same late-ack treatment, the
                // entry just settles to Idle when the last holder answers.
                waiting.remove(msg.src);
                rec.stale_acks.insert(msg.src);
                if let Some(token) = writeback {
                    if token < rec.token {
                        step.violations.push(format!(
                            "{home}: {block} writeback token {token} regressed below {}",
                            rec.token
                        ));
                    }
                    rec.token = token;
                    step.data = true;
                }
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::VerifyCorrect { timely: false },
                ));
                self.finish_evicting(block, step);
            }
            _ => step.events.push(ShadowDirEvent::Stale(msg.src)),
        }
    }

    fn inv_ack(
        &mut self,
        msg: Message,
        had_copy: bool,
        dirty_token: Option<u64>,
        step: &mut ShadowStep,
    ) {
        let block = msg.block;
        let rec = self.blocks.entry(block).or_default();
        if rec.stale_acks.remove(msg.src) {
            if had_copy {
                step.violations.push(format!(
                    "{}: {block} orphaned ack from {} carried a copy",
                    self.home, msg.src
                ));
            }
            step.events.push(ShadowDirEvent::Stale(msg.src));
            return;
        }
        match &mut rec.state {
            SState::Busy { waiting, .. } if waiting.contains(msg.src) => {
                waiting.remove(msg.src);
                if let Some(token) = dirty_token {
                    if token < rec.token {
                        step.violations.push(format!(
                            "{}: {block} writeback token {token} regressed below {}",
                            self.home, rec.token
                        ));
                    }
                    rec.token = token;
                    step.data = true;
                }
                step.events.push(ShadowDirEvent::InvAcked {
                    from: msg.src,
                    had_copy,
                });
                self.finish_busy(block, step);
            }
            SState::Evicting { waiting } if waiting.contains(msg.src) => {
                waiting.remove(msg.src);
                if let Some(token) = dirty_token {
                    if token < rec.token {
                        step.violations.push(format!(
                            "{}: {block} writeback token {token} regressed below {}",
                            self.home, rec.token
                        ));
                    }
                    rec.token = token;
                    step.data = true;
                }
                step.events.push(ShadowDirEvent::InvAcked {
                    from: msg.src,
                    had_copy,
                });
                self.finish_evicting(block, step);
            }
            _ => step.events.push(ShadowDirEvent::Stale(msg.src)),
        }
    }

    /// Once the last eviction acknowledgement lands, the entry frees and any
    /// requests shelved behind the eviction replay.
    fn finish_evicting(&mut self, block: BlockId, step: &mut ShadowStep) {
        let rec = self.blocks.get_mut(&block).expect("evicting block exists");
        let SState::Evicting { waiting } = &rec.state else {
            return;
        };
        if !waiting.is_empty() {
            return;
        }
        rec.state = SState::Idle;
        step.reinject.extend(rec.shelved.drain(..));
    }

    fn finish_busy(&mut self, block: BlockId, step: &mut ShadowStep) {
        let home = self.home;
        let kind = self.kind;
        let rec = self.blocks.get_mut(&block).expect("busy block exists");
        let (requester, want_exclusive, upgrade_reply, verify) = match &rec.state {
            SState::Busy {
                requester,
                want_exclusive,
                upgrade_reply,
                waiting,
                verify,
            } => {
                if !waiting.is_empty() {
                    return;
                }
                (*requester, *want_exclusive, *upgrade_reply, *verify)
            }
            _ => return,
        };
        if want_exclusive {
            rec.version += 1;
            rec.state = SState::Exclusive(requester);
            let reply = if upgrade_reply {
                MsgKind::UpgradeAck {
                    version: rec.version,
                    migratory: false,
                    verify,
                }
            } else {
                MsgKind::DataX {
                    version: rec.version,
                    token: rec.token,
                    verify,
                }
            };
            step.sends.push(Message::new(home, requester, block, reply));
        } else {
            let mut r = Rep::default();
            insert_sharer(kind, &mut r, requester);
            rec.state = SState::Shared(r);
            step.sends.push(Message::new(
                home,
                requester,
                block,
                MsgKind::DataS {
                    version: rec.version,
                    token: rec.token,
                    verify,
                },
            ));
        }
        step.data |= !upgrade_reply;
        step.reinject.extend(rec.shelved.drain(..));
    }
}
