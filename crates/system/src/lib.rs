//! # `ltp-system` — full-system composition
//!
//! Glues the pieces of the ISCA 2000 Last-Touch Prediction reproduction into
//! a runnable machine:
//!
//! * [`Machine`] — 32 nodes, each a program-interpreting CPU plus network
//!   cache plus self-invalidation policy, over the `ltp-dsm` directory
//!   protocol, protocol engines, and contended network interfaces;
//! * [`ExperimentSpec`] — one workload × policy × geometry run, built
//!   through a builder and a [`ltp_core::PolicyRegistry`] spec string; the
//!   workload is any [`ltp_workloads::WorkloadSource`] — a synthetic
//!   benchmark or a recorded [`ltp_workloads::Trace`] (see
//!   [`ExperimentSpec::replay`]);
//! * [`SweepSpec`] — cross products of design points executed in parallel
//!   (longest runs dispatched first), streaming per-run [`RunReport`]s
//!   through a [`ReportSink`];
//! * [`PredictSpec`] — the offline predictor tournament behind
//!   `ltp predict`: workloads drained through the un-timed logical
//!   coherence replay and raced across predictor specs for accuracy,
//!   coverage, and timeliness, about an order of magnitude faster than
//!   full simulation;
//! * [`Metrics`] — the quantities behind Figures 6–9 and Tables 3–4,
//!   reconstructed from the event stream by the built-in
//!   [`probes::CoreMetricsProbe`];
//! * [`probe`] — the observability API: the machine emits typed
//!   [`SimEvent`]s and any number of [`Probe`]s fold them into
//!   self-describing [`MetricsSection`]s (`--probe` on the CLI, `.probe()`
//!   on the builders, [`ProbeRegistry`] spec strings like
//!   `"hist:self-inv-lead"`).
//!
//! # Example
//!
//! ```
//! use ltp_system::ExperimentSpec;
//! use ltp_workloads::Benchmark;
//!
//! // A quick 4-node em3d run with the paper's base-case LTP.
//! let report = ExperimentSpec::builder(Benchmark::Em3d)
//!     .policy_spec("ltp")
//!     .unwrap()
//!     .nodes(4)
//!     .iterations(8)
//!     .build()
//!     .run();
//! assert!(report.metrics.predicted > 0, "LTP learns em3d's one-touch traces");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checker;
mod compat;
mod experiment;
mod machine;
mod metrics;
pub mod predict;
pub mod probe;
pub mod probes;
mod report;
mod shard;
mod stuck;
mod sweep;

pub use checker::{
    explore, CheckerFactory, CoherenceChecker, ExploreConfig, ExploreOutcome, MachineView,
    Violation,
};
#[allow(deprecated)]
pub use compat::PolicyKind;
pub use experiment::{ExperimentBuilder, ExperimentSpec};
pub use machine::{Event, Machine};
pub use metrics::Metrics;
pub use predict::{PredictRow, PredictSpec, DEFAULT_ZOO};
pub use probe::{
    FnProbeFactory, MetricsSection, Probe, ProbeCtx, ProbeFactory, ProbeRegistry, ProbeSpecError,
    RunInfo, SimEvent,
};
pub use report::{JsonLinesSink, MemorySink, NullSink, ReportSink, RunReport};
pub use stuck::{RunOutcome, StuckClass, StuckNode, StuckReport};
pub use sweep::SweepSpec;
