//! # `ltp-system` — full-system composition
//!
//! Glues the pieces of the ISCA 2000 Last-Touch Prediction reproduction into
//! a runnable machine:
//!
//! * [`Machine`] — 32 nodes, each a program-interpreting CPU plus network
//!   cache plus self-invalidation policy, over the `ltp-dsm` directory
//!   protocol, protocol engines, and contended network interfaces;
//! * [`ExperimentSpec`] — benchmark × policy → [`RunReport`], the entry
//!   point used by the examples, the integration tests, and every
//!   figure/table bench;
//! * [`Metrics`] — the quantities behind Figures 6–9 and Tables 3–4.
//!
//! # Example
//!
//! ```
//! use ltp_system::{ExperimentSpec, PolicyKind};
//! use ltp_workloads::Benchmark;
//!
//! // A quick 4-node em3d run with the paper's base-case LTP.
//! let report = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::LTP, 4, 8).run();
//! assert!(report.metrics.predicted > 0, "LTP learns em3d's one-touch traces");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod experiment;
mod machine;
mod metrics;

pub use experiment::{ExperimentSpec, PolicyKind, RunReport};
pub use machine::{Event, Machine};
pub use metrics::Metrics;
