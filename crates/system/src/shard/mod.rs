//! The sharded simulation engine: one slice of the machine per worker.
//!
//! A [`Shard`] owns a contiguous range of nodes *and their home
//! directories* — caches, policies, programs, protocol engines, and network
//! interfaces — plus its own future-event list. Within a clock window (see
//! [`clock`]) a shard runs completely independently; everything that crosses
//! a shard boundary (protocol messages, barrier arrivals, probe events) is
//! buffered and exchanged by the coordinating [`crate::Machine`] at window
//! boundaries (see [`channel`]).
//!
//! # Why sharded runs are bit-identical to serial runs
//!
//! Two properties combine to make the execution independent of the shard
//! count:
//!
//! 1. **Conservative windows.** The window length equals the minimum
//!    cross-node message latency (NI occupancy + network hop), so no event
//!    executed inside a window can schedule work on *another node* within
//!    the same window. Cross-shard messages handed over at the boundary are
//!    always scheduled into windows that have not run yet.
//! 2. **Content-keyed event order.** Every event carries an [`EventKey`]
//!    derived from simulated content (event class, acting node, sender, and
//!    the sender's per-node FIFO sequence number). Same-cycle events pop in
//!    key order — a property of the simulated machine, not of which shard
//!    scheduled what first. Keys are unique per cycle (each node does one
//!    thing at a time; arrivals are FIFO-stamped), so the global pop order
//!    is a total order that every shard count reproduces exactly.
//!
//! The serial engine is the 1-shard instance of the same machinery — there
//! is no separate serial code path to diverge from.

pub(crate) mod channel;
pub(crate) mod clock;
mod partition;

use std::collections::HashMap;

use ltp_core::{BlockId, NodeId, Pc, SelfInvalidationPolicy, SyncKind, Touch, VerifyOutcome};
use ltp_dsm::{
    AccessOutcome, DirEvent, Directory, Message, MsgKind, NetIface, NodeCache, ProtocolEngine,
    SystemConfig,
};
use ltp_sim::{Cycle, KeyedEventQueue};
use ltp_workloads::{Lock, Op, Program};

use crate::probe::{ProbeCtx, SimEvent};
use crate::probes::CoreMetricsProbe;

use channel::{ProbeEntry, Stamped, SyncEvent, SyncRecord};

pub use partition::Partition;

/// Cycles between successive spin-test reads while a lock is observed held.
/// Coarse enough to keep event counts bounded, fine enough that waiting
/// times translate into visibly variable spin-trace lengths.
const SPIN_INTERVAL: u64 = 40;

/// The event alphabet of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The processor on this node is ready for its next operation.
    CpuStep(NodeId),
    /// A protocol message arrives at `msg.dst`.
    Arrive(Message),
    /// The protocol engine at this home may start its next service.
    EngineDrain(NodeId),
    /// A barrier the node was waiting at released at the previous window
    /// boundary; the node performs its synchronization flush and resumes.
    /// Scheduled by the coordinator, never by shards.
    BarrierResume {
        /// The resuming node.
        node: NodeId,
        /// The released barrier.
        id: u32,
    },
}

/// The deterministic same-cycle ordering key (see the module docs).
///
/// Derived `Ord` compares fields in declaration order: event class first
/// (CPU activity before arrivals before engine drains before directory
/// reinjections), then the acting node, then the sender and its FIFO
/// sequence number for arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    class: u8,
    actor: u16,
    src: u16,
    seq: u64,
}

impl EventKey {
    /// `CpuStep` / `BarrierResume` for node `p`. A node waiting at a barrier
    /// has no pending `CpuStep`, so the two uses can never collide on the
    /// same `(cycle, key)`.
    fn cpu(p: NodeId) -> Self {
        EventKey {
            class: 0,
            actor: p.index() as u16,
            src: 0,
            seq: 0,
        }
    }

    /// `Arrive` at `dst`, uniquely identified by the sender and the sender's
    /// per-node send sequence number.
    fn arrive(dst: NodeId, src: NodeId, seq: u64) -> Self {
        EventKey {
            class: 1,
            actor: dst.index() as u16,
            src: ltp_dsm::mutation::arrive_key_src(src.index() as u16),
            seq,
        }
    }

    /// `EngineDrain` at home `h`. Duplicate same-cycle drains are idempotent
    /// (the engine dequeues nothing), so the insertion-sequence fallback
    /// never orders observable work.
    fn drain(h: NodeId) -> Self {
        EventKey {
            class: 2,
            actor: h.index() as u16,
            src: 0,
            seq: 0,
        }
    }

    /// A directory reinjection at home `h` (a request re-presented after a
    /// pending transaction completes). Stamped from the home's own
    /// reinjection counter — a separate class so it cannot collide with a
    /// genuine arrival from the same sender.
    fn reinject(h: NodeId, src: NodeId, seq: u64) -> Self {
        EventKey {
            class: 3,
            actor: h.index() as u16,
            src: src.index() as u16,
            seq,
        }
    }
}

/// What the blocked CPU was doing when its access missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Continuation {
    /// An ordinary program load/store.
    Plain,
    /// The spin-test read of a lock acquisition.
    LockTest(Lock),
    /// The post-backoff confirmation read before a test-and-set.
    LockConfirm(Lock),
    /// The test-and-set write of a lock acquisition.
    LockTas(Lock),
    /// The releasing store of a lock.
    LockRelease(Lock),
    /// The spin load of an ad-hoc flag wait.
    FlagWait(Pc),
}

/// Context of an outstanding miss.
#[derive(Debug, Clone, Copy)]
struct MemCtx {
    block: BlockId,
    pc: Pc,
    is_write: bool,
    cont: Continuation,
}

/// Per-node execution state.
#[derive(Debug)]
enum ExecState {
    /// The next `CpuStep` fetches a fresh op.
    Ready,
    /// Mid lock-acquisition; the next `CpuStep` continues the given stage.
    Locking(Lock, LockStage),
    /// Spinning on an ad-hoc flag; the next `CpuStep` re-reads it.
    FlagSpin(Pc, BlockId),
    /// Waiting for a fill.
    BlockedMem(MemCtx),
    /// An access completed (hit or fill applied) and the CPU is waiting out
    /// its latency; the next `CpuStep` runs the continuation. Deferring the
    /// continuation keeps its *state* changes (lock transitions, sync
    /// flushes) at the same timestamp as the messages they emit — running
    /// them early would let an invalidation arriving in between observe a
    /// cache the flush has already mutated.
    Completing(BlockId, Continuation, bool),
    /// Waiting at a barrier.
    InBarrier(u32),
    /// Program complete.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockStage {
    /// Spin-reading until the lock looks free.
    Test,
    /// Observed free; after a randomized backoff, re-read to confirm it is
    /// still free before attempting the test-and-set. Most contenders see
    /// the winner's store at this point and go back to spinning without
    /// ever issuing the RMW — classic test-and-test-and-set with backoff,
    /// which keeps the thundering herd off the directory and makes
    /// lock-block traces vary from visit to visit.
    Confirm,
    /// Confirmed free: issue the test-and-set RMW.
    Tas,
}

/// One node: processor (program interpreter), cache, and policy.
struct NodeState {
    id: NodeId,
    cache: NodeCache,
    policy: Box<dyn SelfInvalidationPolicy>,
    program: Box<dyn Program>,
    exec: ExecState,
    /// Cumulative failed lock attempts — execution state (it seeds the
    /// deterministic backoff), not a metric.
    lock_failures: u64,
    /// Cycle of the most recent op fetch — the node's last forward
    /// progress, reported by the stuck-run watchdog.
    last_progress: Cycle,
    /// Operations this node has retired (fetched from its program).
    ops_retired: u64,
}

impl std::fmt::Debug for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeState")
            .field("id", &self.id)
            .field("exec", &self.exec)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// One shard: a contiguous node range of the machine with its own event
/// queue, plus the boundary buffers the coordinator drains.
#[derive(Debug)]
pub(crate) struct Shard {
    cfg: SystemConfig,
    part: Partition,
    /// This shard's index and first owned node (all per-node vectors below
    /// are indexed by `node - lo`).
    index: usize,
    lo: u16,
    nodes: Vec<NodeState>,
    dirs: Vec<Directory>,
    engines: Vec<ProtocolEngine>,
    nis: Vec<NetIface>,
    /// Per-home, per-block timestamp of the last departed directory send.
    ///
    /// The pipelined engine completes short (control) services faster than
    /// long (data) ones, so a later-serviced `Inv` could otherwise depart
    /// before an earlier grant for the same block and overtake it on the
    /// (per source→destination FIFO) network — delivering an invalidation
    /// for a copy that has not arrived yet. Directory sends for one block
    /// therefore depart in service order.
    dir_send_order: Vec<HashMap<BlockId, Cycle>>,
    /// Per-local-node FIFO sequence for sent messages (part of arrival
    /// event keys).
    send_seq: Vec<u64>,
    /// Per-local-home sequence for directory reinjections.
    reinject_seq: Vec<u64>,
    /// Flag-wait progress: how many generations of each flag block this node
    /// has consumed. The flag's current generation is the block's data token
    /// (its write count), so spins observe real coherence state — a stale
    /// cached copy really does show the old generation.
    flag_waited: HashMap<(u16, BlockId), u64>,
    queue: KeyedEventQueue<EventKey, Event>,
    /// Per-destination-shard buffers of messages leaving this shard, drained
    /// by the coordinator at each window boundary.
    outbox: Vec<Vec<Stamped>>,
    /// Barrier arrivals and program completions this window.
    sync_log: Vec<SyncRecord>,
    /// Probe-visible events this window (only populated when generic probes
    /// are attached; see `log_events`).
    probe_log: Vec<ProbeEntry>,
    /// Whether probe-visible events are logged for boundary replay.
    log_events: bool,
    /// The built-in core-metrics observer, statically dispatched on the hot
    /// path; one per shard, merged by the coordinator at `finish`.
    core: Option<CoreMetricsProbe>,
    /// `(cycle, key)` of the event currently being handled — the tag under
    /// which its emissions are logged, giving the boundary merge the exact
    /// serial emission order.
    cur_at: Cycle,
    cur_key: EventKey,
    events_handled: u64,
    last_event_time: Cycle,
    finished_local: usize,
    last_finish_local: Cycle,
    /// Block whose protocol messages are traced to stderr
    /// (`LTP_TRACE_BLOCK=<id>`, read once at machine construction).
    trace_block: Option<BlockId>,
    /// Whether flag-wait progress is traced (`LTP_TRACE_FLAGS=1`).
    trace_flags: bool,
    /// Host nanoseconds this shard has spent inside windows (monotonic
    /// clock deltas around [`Shard::run_window`]). Exact work when windows
    /// run unpreempted — single-threaded execution, or workers on a host
    /// with enough cores. Purely observational: never read on the
    /// simulation path.
    busy_ns: u64,
}

impl Shard {
    /// Builds shard `index` of `part`, owning `[lo, lo + policies.len())`,
    /// with its initial `CpuStep`s primed at time zero.
    #[allow(clippy::too_many_arguments)] // assembled once, by `Machine::with_shards`
    pub fn new(
        cfg: SystemConfig,
        part: Partition,
        index: usize,
        policies: Vec<Box<dyn SelfInvalidationPolicy>>,
        programs: Vec<Box<dyn Program>>,
        trace_block: Option<BlockId>,
        trace_flags: bool,
    ) -> Self {
        let (lo, hi) = part.range(index);
        let count = usize::from(hi - lo);
        assert_eq!(policies.len(), count, "one policy per owned node");
        assert_eq!(programs.len(), count, "one program per owned node");
        let nodes: Vec<NodeState> = policies
            .into_iter()
            .zip(programs)
            .enumerate()
            .map(|(i, (policy, program))| {
                let id = NodeId::new(lo + i as u16);
                NodeState {
                    id,
                    cache: NodeCache::new(id),
                    policy,
                    program,
                    exec: ExecState::Ready,
                    lock_failures: 0,
                    last_progress: Cycle::ZERO,
                    ops_retired: 0,
                }
            })
            .collect();
        let dirs = (0..count)
            .map(|i| Directory::with_kind(NodeId::new(lo + i as u16), cfg.directory(), cfg.nodes()))
            .collect();
        let engines = (0..count)
            .map(|_| ProtocolEngine::new(cfg.pipeline_stages()))
            .collect();
        let nis = (0..count)
            .map(|_| NetIface::new(cfg.ni_occupancy()))
            .collect();
        let mut queue = KeyedEventQueue::new();
        for i in 0..count {
            let id = NodeId::new(lo + i as u16);
            queue.schedule(Cycle::ZERO, EventKey::cpu(id), Event::CpuStep(id));
        }
        Shard {
            cfg,
            part,
            index,
            lo,
            nodes,
            dirs,
            engines,
            nis,
            dir_send_order: (0..count).map(|_| HashMap::new()).collect(),
            send_seq: vec![0; count],
            reinject_seq: vec![0; count],
            flag_waited: HashMap::new(),
            queue,
            outbox: (0..part.shards()).map(|_| Vec::new()).collect(),
            sync_log: Vec::new(),
            probe_log: Vec::new(),
            log_events: false,
            core: None,
            cur_at: Cycle::ZERO,
            cur_key: EventKey::cpu(NodeId::new(lo)),
            events_handled: 0,
            last_event_time: Cycle::ZERO,
            finished_local: 0,
            last_finish_local: Cycle::ZERO,
            trace_block,
            trace_flags,
            busy_ns: 0,
        }
    }

    /// Local index of a node owned by this shard.
    #[inline(always)]
    fn li(&self, p: NodeId) -> usize {
        debug_assert_eq!(self.part.shard_of(p), self.index, "{p} not on this shard");
        p.index() - usize::from(self.lo)
    }

    // ---- coordinator interface -------------------------------------------

    /// Runs every pending event in `[start, end)`.
    pub fn run_window(&mut self, start: Cycle, end: Cycle) {
        let _ = start;
        let t0 = std::time::Instant::now();
        while let Some(at) = self.queue.peek_time() {
            if at >= end {
                break;
            }
            let (at, key, ev) = self.queue.pop().expect("peeked event present");
            debug_assert!(at >= start, "event at {at} predates window start {start}");
            self.cur_at = at;
            self.cur_key = key;
            self.events_handled += 1;
            self.last_event_time = self.last_event_time.max(at);
            match ev {
                Event::CpuStep(p) => self.cpu_step(at, p),
                Event::Arrive(msg) => self.arrive(at, msg),
                Event::EngineDrain(h) => self.engine_drain(at, h),
                Event::BarrierResume { node, id } => self.barrier_resume(at, node, id),
            }
        }
        self.busy_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Host nanoseconds spent executing windows so far (barrier waits and
    /// coordinator boundary work excluded).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Earliest pending event time (the coordinator's window-selection and
    /// termination input).
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.queue.peek_time()
    }

    /// Enables or disables boundary event logging (on when any generic probe
    /// is attached to the machine).
    pub fn set_log_events(&mut self, log: bool) {
        self.log_events = log;
    }

    /// Attaches this shard's slice of the core-metrics collector.
    pub fn attach_core(&mut self, core: CoreMetricsProbe) {
        self.core = Some(core);
    }

    /// Takes the core-metrics collector for end-of-run merging.
    pub fn take_core(&mut self) -> Option<CoreMetricsProbe> {
        self.core.take()
    }

    /// Schedules a message delivered from another shard (coordinator only).
    pub fn schedule_inbound(&mut self, st: Stamped) {
        self.queue.schedule(
            st.deliver,
            EventKey::arrive(st.msg.dst, st.msg.src, st.seq),
            Event::Arrive(st.msg),
        );
    }

    /// Schedules a barrier release for a local node at window boundary `at`
    /// (coordinator only).
    pub fn schedule_resume(&mut self, at: Cycle, node: NodeId, id: u32) {
        self.queue
            .schedule(at, EventKey::cpu(node), Event::BarrierResume { node, id });
    }

    /// Takes the per-destination outboxes accumulated this window.
    pub fn take_outboxes(&mut self) -> Vec<Vec<Stamped>> {
        let shards = self.outbox.len();
        std::mem::replace(&mut self.outbox, (0..shards).map(|_| Vec::new()).collect())
    }

    /// Drains the barrier/finish records accumulated this window.
    pub fn take_sync_log(&mut self) -> Vec<SyncRecord> {
        std::mem::take(&mut self.sync_log)
    }

    /// The window's probe log, for the coordinator's boundary merge.
    pub fn probe_log_mut(&mut self) -> &mut Vec<ProbeEntry> {
        &mut self.probe_log
    }

    /// Events handled by this shard so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Timestamp of the latest event handled by this shard.
    pub fn last_event_time(&self) -> Cycle {
        self.last_event_time
    }

    /// Locally finished node count.
    pub fn finished_local(&self) -> usize {
        self.finished_local
    }

    /// Latest local program-completion time.
    pub fn last_finish_local(&self) -> Cycle {
        self.last_finish_local
    }

    /// Number of nodes owned by this shard.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends this shard's unfinished nodes to a stuck-state report.
    pub fn stuck_report_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        for n in &self.nodes {
            if !matches!(n.exec, ExecState::Finished) {
                let _ = writeln!(out, "{}: {:?}", n.id, n.exec);
            }
        }
    }

    /// Appends this shard's unfinished nodes, structured, to a watchdog
    /// diagnosis (see [`crate::StuckReport`]).
    pub fn stuck_nodes_into(&self, out: &mut Vec<crate::StuckNode>) {
        use crate::stuck::{StuckClass, StuckNode};
        for n in &self.nodes {
            let (class, detail) = match &n.exec {
                ExecState::Finished => continue,
                ExecState::Locking(lock, stage) => (
                    StuckClass::LockSpin,
                    format!("lock block {} ({stage:?})", lock.block),
                ),
                ExecState::FlagSpin(_, block) => {
                    (StuckClass::FlagSpin, format!("flag block {block}"))
                }
                ExecState::InBarrier(id) => (StuckClass::BarrierWait, format!("barrier {id}")),
                ExecState::BlockedMem(ctx) => (
                    StuckClass::MemWait,
                    format!(
                        "{} block {}",
                        if ctx.is_write { "write" } else { "read" },
                        ctx.block
                    ),
                ),
                ExecState::Completing(block, ..) => {
                    (StuckClass::Completing, format!("completing block {block}"))
                }
                ExecState::Ready => (StuckClass::Ready, "awaiting CpuStep".to_string()),
            };
            out.push(StuckNode {
                node: n.id.index() as u16,
                class,
                detail,
                last_progress_cycle: n.last_progress.as_u64(),
                ops_retired: n.ops_retired,
            });
        }
    }

    /// End-of-run policy storage stats for local node `i` (shard order is
    /// node order, so the coordinator can emit `PolicyStorage` events in
    /// global node order).
    pub fn policy_storage(&self, i: usize) -> (NodeId, ltp_core::StorageStats) {
        (self.nodes[i].id, self.nodes[i].policy.storage())
    }

    /// The cached line a local node holds for `block`, if any (test/debug
    /// introspection).
    pub fn cached_line(&self, p: NodeId, block: BlockId) -> Option<ltp_dsm::Line> {
        self.nodes[self.li(p)].cache.line(block)
    }

    /// Appends this shard's slice of the machine-wide ground state to a
    /// [`crate::checker::MachineView`].
    pub fn view_into(&self, view: &mut crate::checker::MachineView) {
        for dir in &self.dirs {
            let home = dir.home();
            for (b, rec) in dir.blocks_view() {
                view.dir_blocks.push((home, b, rec));
            }
        }
        for n in &self.nodes {
            for (b, line) in n.cache.lines() {
                view.cache_lines.push((n.id, b, line));
            }
            view.cache_pending += n.cache.pending_misses();
        }
        view.engine_backlog += self
            .engines
            .iter()
            .map(ProtocolEngine::backlog)
            .sum::<usize>();
    }

    // ---- observation -----------------------------------------------------

    /// Delivers one event to the shard-local core collector and, when
    /// generic probes are attached, to the boundary replay log.
    #[inline(always)]
    fn emit(&mut self, now: Cycle, event: SimEvent) {
        if let Some(core) = &mut self.core {
            let ctx = ProbeCtx {
                now,
                nodes: self.cfg.nodes(),
            };
            core.observe(&ctx, &event);
        }
        if self.log_events {
            self.probe_log.push(ProbeEntry {
                at: self.cur_at,
                key: self.cur_key,
                now,
                event,
            });
        }
    }

    /// Logs one event that the core-metrics tallies provably ignore (ops
    /// retired, messages sent, lock/barrier activity). The event is built
    /// lazily, so with no generic probe attached — the default stack —
    /// these very hot emission points cost one branch.
    #[inline(always)]
    fn emit_aux(&mut self, now: Cycle, event: impl FnOnce() -> SimEvent) {
        if self.log_events {
            let event = event();
            self.probe_log.push(ProbeEntry {
                at: self.cur_at,
                key: self.cur_key,
                now,
                event,
            });
        }
    }

    // ---- routing ---------------------------------------------------------

    /// Routes a message from its (local) source at `at`: same-node messages
    /// deliver instantly; everything else serializes through the source NI
    /// and crosses the network, landing either back on this shard's queue or
    /// in the outbox for the destination's shard.
    fn route(&mut self, msg: Message, at: Cycle) {
        self.emit_aux(at, || SimEvent::MessageSent { msg });
        let seq = {
            let s = &mut self.send_seq[msg.src.index() - usize::from(self.lo)];
            let v = *s;
            *s += 1;
            v
        };
        if msg.src == msg.dst {
            self.queue.schedule(
                at,
                EventKey::arrive(msg.dst, msg.src, seq),
                Event::Arrive(msg),
            );
            return;
        }
        let src_li = self.li(msg.src);
        let depart = self.nis[src_li].depart(at);
        let deliver = depart + self.cfg.net_latency();
        let dst_shard = self.part.shard_of(msg.dst);
        if dst_shard == self.index {
            self.queue.schedule(
                deliver,
                EventKey::arrive(msg.dst, msg.src, seq),
                Event::Arrive(msg),
            );
        } else {
            self.outbox[dst_shard].push(Stamped { deliver, seq, msg });
        }
    }

    fn is_directory_bound(kind: MsgKind) -> bool {
        matches!(
            kind,
            MsgKind::GetS
                | MsgKind::GetX
                | MsgKind::Upgrade
                | MsgKind::SelfInvClean
                | MsgKind::SelfInvDirty { .. }
                | MsgKind::InvAck { .. }
        )
    }

    // ---- CPU execution ---------------------------------------------------

    fn cpu_step(&mut self, now: Cycle, p: NodeId) {
        let i = self.li(p);
        match &self.nodes[i].exec {
            ExecState::Ready => self.fetch_and_issue(now, p),
            ExecState::FlagSpin(pc, block) => {
                let (pc, block) = (*pc, *block);
                self.issue_access(now, p, pc, block, false, Continuation::FlagWait(pc));
            }
            ExecState::Locking(lock, stage) => {
                let (lock, stage) = (*lock, *stage);
                match stage {
                    LockStage::Test | LockStage::Confirm => self.issue_access(
                        now,
                        p,
                        lock.spin_pc,
                        lock.block,
                        false,
                        if stage == LockStage::Test {
                            Continuation::LockTest(lock)
                        } else {
                            Continuation::LockConfirm(lock)
                        },
                    ),
                    LockStage::Tas => self.issue_tas(now, p, lock),
                }
            }
            ExecState::Completing(block, cont, tas_won) => {
                let (block, cont, tas_won) = (*block, *cont, *tas_won);
                self.finish_access(now, p, block, cont, tas_won);
            }
            state => unreachable!("CpuStep for {p} in state {state:?}"),
        }
    }

    fn fetch_and_issue(&mut self, now: Cycle, p: NodeId) {
        let i = self.li(p);
        let Some(op) = self.nodes[i].program.next_op() else {
            self.nodes[i].exec = ExecState::Finished;
            self.finished_local += 1;
            self.last_finish_local = self.last_finish_local.max(now);
            self.emit(now, SimEvent::NodeFinished { node: p });
            // A node finishing shrinks the barrier population; the
            // coordinator folds this record and releases any barrier that
            // was waiting only on this node.
            self.sync_log.push(SyncRecord {
                at: now,
                node: p.index() as u16,
                ev: SyncEvent::Finish,
            });
            return;
        };
        self.nodes[i].last_progress = now;
        self.nodes[i].ops_retired += 1;
        self.emit_aux(now, || SimEvent::OpRetired { node: p, op });
        match op {
            Op::Think(c) => {
                self.queue
                    .schedule(now + Cycle::new(c), EventKey::cpu(p), Event::CpuStep(p));
            }
            Op::Read { pc, block } => {
                self.issue_access(now, p, pc, block, false, Continuation::Plain);
            }
            Op::Write { pc, block } => {
                self.issue_access(now, p, pc, block, true, Continuation::Plain);
            }
            Op::Lock(lock) => {
                self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                self.issue_access(
                    now,
                    p,
                    lock.spin_pc,
                    lock.block,
                    false,
                    Continuation::LockTest(lock),
                );
            }
            Op::Unlock(lock) => {
                self.issue_access(
                    now,
                    p,
                    lock.release_pc,
                    lock.block,
                    true,
                    Continuation::LockRelease(lock),
                );
            }
            Op::Barrier(id) => self.barrier_arrive(now, p, id),
            Op::FlagSet { pc, block } => {
                // The signalling store is an ordinary write; the flag's
                // generation is the block token the write bumps.
                self.issue_access(now, p, pc, block, true, Continuation::Plain);
            }
            Op::FlagWait { pc, block } => {
                self.issue_access(now, p, pc, block, false, Continuation::FlagWait(pc));
            }
        }
    }

    fn issue_access(
        &mut self,
        now: Cycle,
        p: NodeId,
        pc: Pc,
        block: BlockId,
        is_write: bool,
        cont: Continuation,
    ) {
        let i = self.li(p);
        match self.nodes[i].cache.access(block, is_write) {
            AccessOutcome::Hit { exclusive } => {
                self.emit(
                    now,
                    SimEvent::CacheHit {
                        node: p,
                        block,
                        pc,
                        is_write,
                        exclusive,
                    },
                );
                let fire = self.nodes[i].policy.on_touch(Touch {
                    block,
                    pc,
                    is_write,
                    exclusive,
                    fill: None,
                });
                if fire {
                    self.self_invalidate(now, p, block);
                }
                self.complete_access(now + self.cfg.cpu_hit(), p, block, cont, false);
            }
            AccessOutcome::Miss(kind) => {
                self.emit(
                    now,
                    SimEvent::CacheMiss {
                        node: p,
                        block,
                        pc,
                        is_write,
                    },
                );
                self.nodes[i].exec = ExecState::BlockedMem(MemCtx {
                    block,
                    pc,
                    is_write,
                    cont,
                });
                let home = self.cfg.home_of(block);
                self.route(Message::new(p, home, block, kind), now);
            }
        }
    }

    /// Issues the test-and-set RMW of a lock acquisition. The atomic's
    /// success is decided against *protocol-serialized* state: on a hit the
    /// line already holds write permission, so the swap applies in place; on
    /// a miss the fetch installs the line exclusively ([`NodeCache::access_tas`])
    /// and the swap applies the moment the fill lands — before anything else
    /// can intervene, exactly like a hardware RMW holding the line.
    fn issue_tas(&mut self, now: Cycle, p: NodeId, lock: Lock) {
        let i = self.li(p);
        let (pc, block) = (lock.tas_pc, lock.block);
        match self.nodes[i].cache.access_tas(block) {
            AccessOutcome::Hit { exclusive } => {
                self.emit(
                    now,
                    SimEvent::CacheHit {
                        node: p,
                        block,
                        pc,
                        is_write: true,
                        exclusive,
                    },
                );
                let won = self.nodes[i].cache.try_tas(block);
                let fire = self.nodes[i].policy.on_touch(Touch {
                    block,
                    pc,
                    is_write: true,
                    exclusive,
                    fill: None,
                });
                if fire {
                    self.self_invalidate(now, p, block);
                }
                self.complete_access(
                    now + self.cfg.cpu_hit(),
                    p,
                    block,
                    Continuation::LockTas(lock),
                    won,
                );
            }
            AccessOutcome::Miss(kind) => {
                self.emit(
                    now,
                    SimEvent::CacheMiss {
                        node: p,
                        block,
                        pc,
                        is_write: true,
                    },
                );
                self.nodes[i].exec = ExecState::BlockedMem(MemCtx {
                    block,
                    pc,
                    is_write: true,
                    cont: Continuation::LockTas(lock),
                });
                let home = self.cfg.home_of(block);
                self.route(Message::new(p, home, block, kind), now);
            }
        }
    }

    /// Whether a lock block currently *looks held* from this node's cached
    /// copy: the lock value is the block's token parity (odd = held). An
    /// absent line reads as generation 0 — free — which is benign: the
    /// confirm read and the test-and-set itself are protocol-serialized.
    fn lock_looks_held(&self, p: NodeId, block: BlockId) -> bool {
        self.nodes[self.li(p)]
            .cache
            .line(block)
            .map_or(0, |l| l.token)
            % 2
            == 1
    }

    /// Finishes an access (hit or fill) once its latency elapses: parks the
    /// node in [`ExecState::Completing`] and schedules the continuation to
    /// run at `resume_at`. `tas_won` is meaningful only for
    /// [`Continuation::LockTas`] (the RMW outcome is decided at fill time,
    /// against protocol-serialized state; only its *consequences* wait).
    fn complete_access(
        &mut self,
        resume_at: Cycle,
        p: NodeId,
        block: BlockId,
        cont: Continuation,
        tas_won: bool,
    ) {
        let i = self.li(p);
        self.nodes[i].exec = ExecState::Completing(block, cont, tas_won);
        self.sched_cpu(resume_at, p);
    }

    /// Runs an access's continuation at its proper time, advancing lock
    /// state machines and scheduling the processor's next step.
    fn finish_access(
        &mut self,
        now: Cycle,
        p: NodeId,
        block: BlockId,
        cont: Continuation,
        tas_won: bool,
    ) {
        let resume_at = now;
        let i = self.li(p);
        match cont {
            Continuation::Plain => {
                self.nodes[i].exec = ExecState::Ready;
                self.sched_cpu(resume_at, p);
            }
            Continuation::LockTest(lock) => {
                debug_assert_eq!(block, lock.block);
                if self.lock_looks_held(p, lock.block) {
                    // Keep spinning: each retest is a real touch of the lock
                    // block (usually a cache hit, until a release
                    // invalidates the copy).
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    self.sched_cpu(resume_at + Cycle::new(SPIN_INTERVAL), p);
                } else {
                    // Looks free: back off a randomized interval, then
                    // confirm before attempting the RMW.
                    self.nodes[i].lock_failures += 1;
                    let slots = backoff_slots(p, self.nodes[i].lock_failures);
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Confirm);
                    self.sched_cpu(resume_at + Cycle::new(SPIN_INTERVAL * slots), p);
                }
            }
            Continuation::LockConfirm(lock) => {
                debug_assert_eq!(block, lock.block);
                if self.lock_looks_held(p, lock.block) {
                    // Someone won during the backoff: resume spinning
                    // without ever issuing the test-and-set.
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    self.sched_cpu(resume_at + Cycle::new(SPIN_INTERVAL), p);
                } else {
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Tas);
                    self.sched_cpu(resume_at, p);
                }
            }
            Continuation::LockTas(lock) => {
                if !tas_won {
                    // Lost the race: back off before spinning again. The
                    // deterministic pseudo-random backoff breaks up the
                    // test-and-set herd so lock-block traces vary per visit
                    // (the raytrace §5.4 effect: "locks spin a variable
                    // number of times per visit").
                    self.nodes[i].lock_failures += 1;
                    let backoff = backoff_slots(p, self.nodes[i].lock_failures);
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    self.sched_cpu(resume_at + Cycle::new(SPIN_INTERVAL * backoff), p);
                } else {
                    self.emit_aux(resume_at, || SimEvent::LockAcquired {
                        node: p,
                        block: lock.block,
                    });
                    self.nodes[i].exec = ExecState::Ready;
                    if lock.exposed {
                        self.sync_boundary(resume_at, p, SyncKind::LockAcquire);
                    }
                    self.sched_cpu(resume_at, p);
                }
            }
            Continuation::LockRelease(lock) => {
                // The releasing store bumped the token back to even (held →
                // free) through the ordinary write path — possibly refetching
                // the line exclusively first if a spinner's read had stolen
                // it.
                debug_assert!(
                    !self.lock_looks_held(p, lock.block)
                        || self.nodes[i].cache.line(lock.block).is_none(),
                    "release left the lock looking held"
                );
                self.emit_aux(resume_at, || SimEvent::LockReleased {
                    node: p,
                    block: lock.block,
                });
                self.nodes[i].exec = ExecState::Ready;
                if lock.exposed {
                    self.sync_boundary(resume_at, p, SyncKind::LockRelease);
                }
                self.sched_cpu(resume_at, p);
            }
            Continuation::FlagWait(pc) => {
                // Observe the generation from the (possibly stale) cached
                // copy — exactly what real spin code would see.
                let observed = self.nodes[i].cache.line(block).map_or(0, |l| l.token);
                if self.trace_flags {
                    eprintln!(
                        "[{resume_at}] {p} flagwait {block}: observed={observed} waited={:?} line={:?}",
                        self.flag_waited.get(&(p.index() as u16, block)),
                        self.nodes[i].cache.line(block)
                    );
                }
                let waited = self
                    .flag_waited
                    .entry((p.index() as u16, block))
                    .or_insert(0);
                if observed > *waited {
                    *waited += 1;
                    self.nodes[i].exec = ExecState::Ready;
                    self.sched_cpu(resume_at, p);
                } else {
                    self.nodes[i].exec = ExecState::FlagSpin(pc, block);
                    self.sched_cpu(resume_at + Cycle::new(SPIN_INTERVAL), p);
                }
            }
        }
    }

    #[inline(always)]
    fn sched_cpu(&mut self, at: Cycle, p: NodeId) {
        self.queue.schedule(at, EventKey::cpu(p), Event::CpuStep(p));
    }

    fn barrier_arrive(&mut self, now: Cycle, p: NodeId, id: u32) {
        self.emit_aux(now, || SimEvent::BarrierEnter { node: p, id });
        let i = self.li(p);
        self.nodes[i].exec = ExecState::InBarrier(id);
        self.sync_log.push(SyncRecord {
            at: now,
            node: p.index() as u16,
            ev: SyncEvent::Arrive(id),
        });
    }

    /// Handles the coordinator's release of a barrier this node was waiting
    /// at: the synchronization flush (DSI's burst) runs here, under this
    /// window's ordinary emission and routing paths.
    fn barrier_resume(&mut self, now: Cycle, p: NodeId, id: u32) {
        let i = self.li(p);
        debug_assert!(
            matches!(self.nodes[i].exec, ExecState::InBarrier(b) if b == id),
            "node released from a barrier it was not waiting at"
        );
        self.nodes[i].exec = ExecState::Ready;
        self.sync_boundary(now, p, SyncKind::Barrier);
        self.sched_cpu(now + self.cfg.cpu_hit(), p);
    }

    /// Reports a synchronization boundary to the node's policy and performs
    /// any bulk self-invalidation it requests (DSI's flush).
    fn sync_boundary(&mut self, now: Cycle, p: NodeId, kind: SyncKind) {
        let i = self.li(p);
        let flushes = self.nodes[i].policy.on_sync(kind);
        for block in flushes {
            self.self_invalidate(now, p, block);
        }
    }

    /// Executes one self-invalidation: drops the local copy and notifies the
    /// home (clean notification or dirty writeback).
    fn self_invalidate(&mut self, now: Cycle, p: NodeId, block: BlockId) {
        let i = self.li(p);
        let Some(kind) = self.nodes[i].cache.self_invalidate(block) else {
            return; // absent or mid-transaction: skip (bulk flushes may race)
        };
        self.emit(
            now,
            SimEvent::SelfInvalidation {
                node: p,
                block,
                dirty: matches!(kind, MsgKind::SelfInvDirty { .. }),
            },
        );
        let home = self.cfg.home_of(block);
        self.route(Message::new(p, home, block, kind), now);
    }

    // ---- message handling ------------------------------------------------

    fn arrive(&mut self, now: Cycle, msg: Message) {
        self.emit(now, SimEvent::MessageDelivered { msg });
        if self.trace_block == Some(msg.block) {
            eprintln!("[{now}] arrive {} -> {}: {:?}", msg.src, msg.dst, msg.kind);
        }
        if Self::is_directory_bound(msg.kind) {
            let h = self.li(msg.dst);
            if self.engines[h].enqueue(now, msg) {
                let at = self.engines[h].next_ready(now);
                self.queue
                    .schedule(at, EventKey::drain(msg.dst), Event::EngineDrain(msg.dst));
            }
        } else {
            self.cache_side(now, msg);
        }
    }

    fn engine_drain(&mut self, now: Cycle, h: NodeId) {
        let hi = self.li(h);
        let Some((msg, queued)) = self.engines[hi].dequeue(now) else {
            return;
        };
        self.emit_aux(now, || SimEvent::DirAccepted { home: h, msg });
        let step = self.dirs[hi].process(msg);
        let service = if step.data_service {
            self.cfg.dir_data_service()
        } else {
            self.cfg.dir_control()
        };
        let done = self.engines[hi].begin_service(now, service);
        self.emit(
            now,
            SimEvent::MessageServiced {
                home: h,
                kind: msg.kind,
                queueing: queued,
                service,
                data: step.data_service,
            },
        );
        for &event in &step.events {
            let block = msg.block;
            self.emit(
                now,
                match event {
                    DirEvent::InvalidationSent { to } => {
                        SimEvent::InvalidationSent { home: h, to, block }
                    }
                    DirEvent::InvalidationAcked { from, had_copy } => SimEvent::InvalidationAcked {
                        home: h,
                        from,
                        block,
                        had_copy,
                    },
                    DirEvent::BroadcastOverflow => SimEvent::BroadcastOverflow { home: h, block },
                    DirEvent::StaleIgnored { from } => SimEvent::StaleIgnored {
                        home: h,
                        from,
                        block,
                        kind: msg.kind,
                    },
                    DirEvent::EntryEvicted {
                        block: victim,
                        invalidations,
                    } => SimEvent::DirEntryEvicted {
                        home: h,
                        block: victim,
                        invalidations,
                    },
                },
            );
        }
        // Clamp departures so sends for one block leave in service order
        // (see `dir_send_order`). A sparse eviction's invalidations ride in
        // the same service but target the *victim* block, so each send
        // clamps on its own block's lane.
        let depart = {
            let last = self.dir_send_order[hi]
                .entry(msg.block)
                .or_insert(Cycle::ZERO);
            let depart = done.max(*last);
            *last = depart;
            depart
        };
        for m in step.sends {
            let at = if m.block == msg.block {
                depart
            } else {
                let last = self.dir_send_order[hi]
                    .entry(m.block)
                    .or_insert(Cycle::ZERO);
                let at = done.max(*last);
                *last = at;
                at
            };
            self.route(m, at);
        }
        for r in step.reinject {
            let seq = {
                let s = &mut self.reinject_seq[hi];
                let v = *s;
                *s += 1;
                v
            };
            self.queue
                .schedule(depart, EventKey::reinject(h, r.src, seq), Event::Arrive(r));
        }
        if self.engines[hi].arm_next_drain() {
            let at = self.engines[hi].next_ready(now);
            self.queue
                .schedule(at, EventKey::drain(h), Event::EngineDrain(h));
        }
    }

    fn cache_side(&mut self, now: Cycle, msg: Message) {
        let p = msg.dst;
        let i = self.li(p);
        match msg.kind {
            MsgKind::Inv => {
                let resp = self.nodes[i].cache.handle_inv(msg.block);
                self.emit(
                    now,
                    SimEvent::Invalidated {
                        node: p,
                        block: msg.block,
                        had_copy: resp.had_copy,
                    },
                );
                if resp.had_copy {
                    self.nodes[i].policy.on_invalidation(msg.block);
                }
                if ltp_dsm::mutation::fire_drop_invack() {
                    return;
                }
                let home = self.cfg.home_of(msg.block);
                self.route(
                    Message::new(
                        p,
                        home,
                        msg.block,
                        MsgKind::InvAck {
                            had_copy: resp.had_copy,
                            dirty_token: resp.dirty_token,
                        },
                    ),
                    now,
                );
            }
            MsgKind::VerifyCorrect { timely } => {
                self.emit(
                    now,
                    SimEvent::PredictionVerified {
                        node: p,
                        block: msg.block,
                        outcome: VerifyOutcome::Correct,
                        timely,
                    },
                );
                self.nodes[i]
                    .policy
                    .on_verification(msg.block, VerifyOutcome::Correct);
            }
            MsgKind::DataS { .. } | MsgKind::DataX { .. } | MsgKind::UpgradeAck { .. } => {
                self.complete_fill(now, msg);
            }
            other => unreachable!("cache received {other:?}"),
        }
    }

    fn complete_fill(&mut self, now: Cycle, msg: Message) {
        let p = msg.dst;
        let i = self.li(p);
        let ExecState::BlockedMem(ctx) = self.nodes[i].exec else {
            unreachable!("fill for {p} which is not blocked");
        };
        debug_assert_eq!(ctx.block, msg.block, "fill for the wrong block");
        let fill = self.nodes[i].cache.apply_reply(msg.block, msg.kind);
        // A test-and-set applies the moment its fetch lands, before the
        // policy or anything else can observe the line — the atomic's
        // outcome is decided purely by the protocol-serialized token parity
        // the fill delivered.
        let tas_won =
            matches!(ctx.cont, Continuation::LockTas(_)) && self.nodes[i].cache.try_tas(msg.block);
        // Resolve an earlier prediction first (FIFO per block), then start
        // the new trace with this access's touch.
        if let Some(v) = fill
            .verify
            .filter(|_| !ltp_dsm::mutation::fire_skip_fill_verify())
        {
            // Verdicts piggybacked on fills resolved when this very request
            // reached the directory — never timely.
            self.emit(
                now,
                SimEvent::PredictionVerified {
                    node: p,
                    block: msg.block,
                    outcome: v,
                    timely: false,
                },
            );
            self.nodes[i].policy.on_verification(msg.block, v);
        }
        let fire = self.nodes[i].policy.on_touch(Touch {
            block: ctx.block,
            pc: ctx.pc,
            is_write: ctx.is_write,
            exclusive: fill.exclusive,
            fill: Some(fill.info),
        });
        if fire {
            self.self_invalidate(now, p, ctx.block);
        }
        // The requester-side network-cache install costs one memory access
        // (this is what stretches the round trip to Table 1's ≈416 cycles).
        self.complete_access(now + self.cfg.mem_access(), p, ctx.block, ctx.cont, tas_won);
    }
}

/// Deterministic pseudo-random backoff (in spin-interval slots) after a
/// failed test-and-set, derived from the node id and its cumulative
/// failure count so reruns reproduce exactly.
pub(crate) fn backoff_slots(p: NodeId, failures: u64) -> u64 {
    let mut z = (p.index() as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(failures.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z ^= z >> 29;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    1 + ((z >> 33) % 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_keys_order_by_class_then_actor() {
        let cpu = EventKey::cpu(NodeId::new(3));
        let arrive = EventKey::arrive(NodeId::new(0), NodeId::new(9), 4);
        let drain = EventKey::drain(NodeId::new(0));
        let reinject = EventKey::reinject(NodeId::new(0), NodeId::new(9), 0);
        assert!(cpu < arrive, "CPU activity precedes arrivals");
        assert!(arrive < drain, "arrivals precede engine drains");
        assert!(drain < reinject, "drains precede reinjections");
        assert!(EventKey::cpu(NodeId::new(1)) < EventKey::cpu(NodeId::new(2)));
        assert!(
            EventKey::arrive(NodeId::new(0), NodeId::new(1), 5)
                < EventKey::arrive(NodeId::new(0), NodeId::new(1), 6),
            "same-edge arrivals order by FIFO sequence"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_spread() {
        let a = backoff_slots(NodeId::new(3), 7);
        let b = backoff_slots(NodeId::new(3), 7);
        assert_eq!(a, b);
        assert!((1..=6).contains(&a));
        let spread: std::collections::HashSet<u64> = (0..16u16)
            .map(|n| backoff_slots(NodeId::new(n), 1))
            .collect();
        assert!(spread.len() > 2, "backoff must not be uniform: {spread:?}");
    }
}
