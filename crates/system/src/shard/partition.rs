//! Node-to-shard assignment.
//!
//! Nodes (and with them their caches, home directories, protocol engines,
//! and network interfaces) are partitioned into contiguous, balanced index
//! ranges — shard `s` owns `[start(s), start(s+1))`. Contiguity keeps the
//! mapping a two-branch arithmetic function (no table lookup on the hot
//! cross-shard routing path) and makes per-shard state a simple slice of the
//! serial machine's per-node vectors.

use ltp_core::NodeId;

/// A contiguous, balanced partition of `nodes` node indices into `shards`
/// ranges. The first `nodes % shards` shards own one extra node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    nodes: u16,
    shards: u16,
}

impl Partition {
    /// Partitions `nodes` nodes into `shards` ranges. A request for more
    /// shards than nodes is clamped, so every shard owns at least one node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `shards` is zero.
    pub fn new(nodes: u16, shards: usize) -> Self {
        assert!(nodes > 0, "cannot partition zero nodes");
        assert!(shards > 0, "cannot partition into zero shards");
        let shards = (shards.min(usize::from(nodes))) as u16;
        Partition { nodes, shards }
    }

    /// Number of shards in the partition (after clamping).
    pub fn shards(self) -> usize {
        usize::from(self.shards)
    }

    /// The shard owning node `p`.
    #[inline]
    pub fn shard_of(self, p: NodeId) -> usize {
        let i = p.index() as u32;
        let base = u32::from(self.nodes / self.shards);
        let rem = u32::from(self.nodes % self.shards);
        // The first `rem` shards own `base + 1` nodes each.
        let fat = rem * (base + 1);
        if i < fat {
            (i / (base + 1)) as usize
        } else {
            (rem + (i - fat) / base) as usize
        }
    }

    /// The `[lo, hi)` node-index range owned by shard `s`.
    pub fn range(self, s: usize) -> (u16, u16) {
        assert!(s < self.shards(), "shard index out of range");
        let s = s as u16;
        let base = self.nodes / self.shards;
        let rem = self.nodes % self.shards;
        let lo = if s < rem {
            s * (base + 1)
        } else {
            rem * (base + 1) + (s - rem) * base
        };
        let hi = lo + base + u16::from(s < rem);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_all_nodes_exactly_once() {
        for nodes in [2u16, 3, 7, 32, 97, 256] {
            for shards in [1usize, 2, 3, 4, 5, 8, 300] {
                let part = Partition::new(nodes, shards);
                let mut next = 0u16;
                for s in 0..part.shards() {
                    let (lo, hi) = part.range(s);
                    assert_eq!(lo, next, "ranges must be contiguous");
                    assert!(hi > lo, "every shard owns at least one node");
                    for i in lo..hi {
                        assert_eq!(part.shard_of(NodeId::new(i)), s);
                    }
                    next = hi;
                }
                assert_eq!(next, nodes, "ranges must cover all nodes");
            }
        }
    }

    #[test]
    fn balanced_within_one_node() {
        let part = Partition::new(10, 4);
        let sizes: Vec<u16> = (0..4)
            .map(|s| {
                let (lo, hi) = part.range(s);
                hi - lo
            })
            .collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn clamps_shards_to_node_count() {
        let part = Partition::new(3, 8);
        assert_eq!(part.shards(), 3);
    }
}
