//! The conservative virtual clock driving windowed execution.
//!
//! Simulated time is cut into fixed windows `[kL, (k+1)L)` where `L` is the
//! **lookahead**: the minimum latency of any cross-node message
//! (`SystemConfig::min_cross_node_latency` — NI occupancy plus network
//! latency). Within a window every shard may run independently, because a
//! message routed by any handler executing at cycle `t < (k+1)L` cannot be
//! delivered before `t + L ≥ kL + L = (k+1)L` — i.e. never inside the
//! current window. Same-node messages (which deliver instantly) stay on the
//! sending shard, so they need no lookahead.
//!
//! The window grid is fixed (boundaries are always multiples of `L`), which
//! makes the sequence of barrier-release and message-exchange points a
//! function of the configuration alone — independent of the shard count.
//! When the global next-event time jumps, the clock skips empty windows in
//! one step rather than stepping through them.

use ltp_sim::Cycle;

/// Window arithmetic over the fixed lookahead grid.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowClock {
    lookahead: u64,
}

impl WindowClock {
    /// A clock with the given lookahead (window length) in cycles.
    ///
    /// # Panics
    ///
    /// Panics on zero lookahead — a zero-latency cross-node path would make
    /// concurrent windows unsound.
    pub fn new(lookahead: Cycle) -> Self {
        let lookahead = lookahead.as_u64();
        assert!(lookahead > 0, "shard lookahead must be positive");
        WindowClock { lookahead }
    }

    /// The window `[start, end)` containing cycle `t`.
    pub fn window_of(self, t: Cycle) -> (Cycle, Cycle) {
        let k = t.as_u64() / self.lookahead;
        (
            Cycle::new(k * self.lookahead),
            Cycle::new((k + 1).saturating_mul(self.lookahead)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_tile_the_timeline() {
        let clock = WindowClock::new(Cycle::new(88));
        assert_eq!(
            clock.window_of(Cycle::ZERO),
            (Cycle::new(0), Cycle::new(88))
        );
        assert_eq!(
            clock.window_of(Cycle::new(87)),
            (Cycle::new(0), Cycle::new(88))
        );
        assert_eq!(
            clock.window_of(Cycle::new(88)),
            (Cycle::new(88), Cycle::new(176))
        );
        // Skipping far ahead lands on the same grid.
        let (lo, hi) = clock.window_of(Cycle::new(1_000_000));
        assert_eq!(lo.as_u64() % 88, 0);
        assert_eq!(hi.as_u64() - lo.as_u64(), 88);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_is_rejected() {
        let _ = WindowClock::new(Cycle::ZERO);
    }
}
