//! Cross-shard exchange records and the worker rendezvous barrier.
//!
//! During a window, shards never touch each other's state: everything that
//! must cross a shard boundary is buffered locally and handed to the
//! coordinator at the window boundary —
//!
//! * [`Stamped`] protocol messages bound for a node on another shard, each
//!   carrying its delivery cycle (≥ the next window start, by the lookahead
//!   argument) and the sender's per-node FIFO sequence number;
//! * [`SyncRecord`]s describing barrier arrivals and program completions,
//!   folded into the global barrier state by the coordinator;
//! * [`ProbeEntry`] event logs, merged across shards in handled-event order
//!   and replayed into the attached probes.
//!
//! The sequence stamps make every record's position in the merged order a
//! function of simulated content, never of wall-clock scheduling — this is
//! where bit-identity across shard counts is enforced.

use std::sync::atomic::{AtomicUsize, Ordering};

use ltp_dsm::Message;
use ltp_sim::Cycle;

use crate::probe::SimEvent;

use super::EventKey;

/// A protocol message crossing a shard boundary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stamped {
    /// Absolute delivery cycle at the destination.
    pub deliver: Cycle,
    /// The sender node's FIFO sequence number (part of the arrival's
    /// deterministic event key).
    pub seq: u64,
    /// The message itself.
    pub msg: Message,
}

/// What a node did at a synchronization point during a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncEvent {
    /// The node arrived at barrier `id`.
    Arrive(u32),
    /// The node finished its program.
    Finish,
}

/// One barrier-relevant action, logged by the owning shard and folded
/// globally by the coordinator in `(cycle, node)` order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SyncRecord {
    pub at: Cycle,
    pub node: u16,
    pub ev: SyncEvent,
}

/// One probe-visible event, tagged with the `(cycle, key)` of the handler
/// that emitted it so logs from different shards merge into the exact serial
/// emission order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeEntry {
    /// Time and key of the handled event this emission belongs to. Keys are
    /// globally unique per cycle, and one handler's emissions stay
    /// contiguous, so `(at, key, intra-log position)` is a total order.
    pub at: Cycle,
    pub key: EventKey,
    /// The emission's own timestamp (handlers emit at `now` and occasionally
    /// at later completion times).
    pub now: Cycle,
    pub event: SimEvent,
}

/// A sense-reversing spin barrier for the window rendezvous.
///
/// `std::sync::Barrier` parks threads in the kernel; at tens of thousands of
/// windows per run the wake-up latency dominates the small windows. This
/// barrier spins (with a `yield_now` fallback so oversubscribed machines
/// still make progress), which keeps the per-window synchronization cost in
/// the sub-microsecond range.
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(total: usize) -> Self {
        assert!(total > 0);
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `total` participants have called `wait`.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the count for the next phase, then flip
            // the generation to release the spinners. Participants can only
            // re-enter after observing the flip, so the reset cannot race
            // with next-phase increments.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 10_000 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn spin_barrier_synchronizes_phases() {
        let threads = 4;
        let barrier = Arc::new(SpinBarrier::new(threads));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..100u64 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // Between the two waits every thread has finished its
                        // increment for this phase.
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen, (phase + 1) * threads as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
