//! The full-machine world: CPUs, caches, policies, directories, engines, and
//! network interfaces composed into one deterministic discrete-event
//! simulation.
//!
//! [`Machine`] implements [`ltp_sim::World`]. Three event kinds drive it:
//!
//! * [`Event::CpuStep`] — a processor is ready to issue its next operation
//!   (program ops, lock spin iterations, barrier arrivals);
//! * [`Event::Arrive`] — a protocol message reaches its destination node
//!   (directory-bound kinds enter the home's protocol engine; cache-bound
//!   kinds complete fills, invalidate copies, or deliver verification
//!   verdicts);
//! * [`Event::EngineDrain`] — a home's protocol engine is ready to service
//!   its next queued message.
//!
//! Locks are executed here as test-and-test-and-set loops over their shared
//! block, so lock blocks generate genuine coherence traffic: spin reads
//! touch the block (training the predictors on variable-length traces —
//! the `raytrace` effect), test-and-set upgrades are migratory, and releases
//! ping-pong ownership.
//!
//! The machine keeps **no metrics of its own**: at every point where it used
//! to bump a counter it now emits a [`SimEvent`] to the attached probes
//! (see [`crate::probe`]). Attach the built-in
//! [`crate::probes::CoreMetricsProbe`] via [`Machine::attach_core_metrics`]
//! to reconstruct the classic flat [`Metrics`]; attach any number of
//! [`Probe`]s for everything else. A machine with nothing attached runs the
//! protocol at full speed and reports nothing.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ltp_core::{BlockId, NodeId, Pc, SelfInvalidationPolicy, SyncKind, Touch, VerifyOutcome};
use ltp_dsm::{
    AccessOutcome, DirEvent, Directory, Message, MsgKind, NetIface, NodeCache, ProtocolEngine,
    SystemConfig,
};
use ltp_sim::{Cycle, EventQueue, World};
use ltp_workloads::{Lock, Op, Program};

use crate::metrics::Metrics;
use crate::probe::{MetricsSection, Probe, ProbeCtx, SimEvent};
use crate::probes::CoreMetricsProbe;

/// Cycles between successive spin-test reads while a lock is observed held.
/// Coarse enough to keep event counts bounded, fine enough that waiting
/// times translate into visibly variable spin-trace lengths.
const SPIN_INTERVAL: u64 = 40;

/// The event alphabet of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The processor on this node is ready for its next operation.
    CpuStep(NodeId),
    /// A protocol message arrives at `msg.dst`.
    Arrive(Message),
    /// The protocol engine at this home may start its next service.
    EngineDrain(NodeId),
}

/// What the blocked CPU was doing when its access missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Continuation {
    /// An ordinary program load/store.
    Plain,
    /// The spin-test read of a lock acquisition.
    LockTest(Lock),
    /// The post-backoff confirmation read before a test-and-set.
    LockConfirm(Lock),
    /// The test-and-set write of a lock acquisition.
    LockTas(Lock),
    /// The releasing store of a lock.
    LockRelease(Lock),
    /// The spin load of an ad-hoc flag wait.
    FlagWait(Pc),
}

/// Context of an outstanding miss.
#[derive(Debug, Clone, Copy)]
struct MemCtx {
    block: BlockId,
    pc: Pc,
    is_write: bool,
    cont: Continuation,
}

/// Per-node execution state.
#[derive(Debug)]
enum ExecState {
    /// The next `CpuStep` fetches a fresh op.
    Ready,
    /// Mid lock-acquisition; the next `CpuStep` continues the given stage.
    Locking(Lock, LockStage),
    /// Spinning on an ad-hoc flag; the next `CpuStep` re-reads it.
    FlagSpin(Pc, BlockId),
    /// Waiting for a fill.
    BlockedMem(MemCtx),
    /// Waiting at a barrier.
    InBarrier(u32),
    /// Program complete.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockStage {
    /// Spin-reading until the lock looks free.
    Test,
    /// Observed free; after a randomized backoff, re-read to confirm it is
    /// still free before attempting the test-and-set. Most contenders see
    /// the winner's store at this point and go back to spinning without
    /// ever issuing the RMW — classic test-and-test-and-set with backoff,
    /// which keeps the thundering herd off the directory and makes
    /// lock-block traces vary from visit to visit.
    Confirm,
    /// Confirmed free: issue the test-and-set RMW.
    Tas,
}

/// One node: processor (program interpreter), cache, and policy.
struct NodeState {
    id: NodeId,
    cache: NodeCache,
    policy: Box<dyn SelfInvalidationPolicy>,
    program: Box<dyn Program>,
    exec: ExecState,
    /// Cumulative failed lock attempts — execution state (it seeds the
    /// deterministic backoff), not a metric.
    lock_failures: u64,
}

impl std::fmt::Debug for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeState")
            .field("id", &self.id)
            .field("exec", &self.exec)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// Logical lock word state (the simulated "value" of a lock block).
#[derive(Debug, Default, Clone, Copy)]
struct LockWord {
    held: bool,
    owner: Option<NodeId>,
}

/// The composed CC-NUMA machine.
///
/// Build one with [`Machine::new`], attach observers
/// ([`Machine::attach_core_metrics`] for the classic flat [`Metrics`],
/// [`Machine::attach_probe`] for anything else), seed initial
/// [`Event::CpuStep`] events via [`Machine::prime`], run it under
/// [`ltp_sim::Simulation`], then call [`Machine::finish`].
///
/// Most users should go through `ltp_system::ExperimentSpec` instead.
#[derive(Debug)]
pub struct Machine {
    cfg: SystemConfig,
    nodes: Vec<NodeState>,
    dirs: Vec<Directory>,
    engines: Vec<ProtocolEngine>,
    nis: Vec<NetIface>,
    locks: HashMap<BlockId, LockWord>,
    /// Flag-wait progress: how many generations of each flag block this node
    /// has consumed. The flag's current generation is the block's data token
    /// (its write count), so spins observe real coherence state — a stale
    /// cached copy really does show the old generation.
    flag_waited: HashMap<(u16, BlockId), u64>,
    /// Barrier wait-sets, keyed per barrier id. All live (unfinished) nodes
    /// must arrive at the *same* id before it releases; a second id showing
    /// up while one is collecting is a malformed workload and is rejected
    /// with a hard error (not a `debug_assert`), because silently merging
    /// distinct barriers would corrupt the release bookkeeping.
    barrier_waiting: BTreeMap<u32, BTreeSet<u16>>,
    finished: usize,
    last_finish: Cycle,
    /// The built-in core-metrics observer, kept out of the generic probe
    /// list so its (very hot) event handling is statically dispatched.
    core: Option<CoreMetricsProbe>,
    /// Attached observers, called in attach order on every event.
    probes: Vec<Box<dyn Probe>>,
    /// Per-home, per-block timestamp of the last departed directory send.
    ///
    /// The pipelined engine completes short (control) services faster than
    /// long (data) ones, so a later-serviced `Inv` could otherwise depart
    /// before an earlier grant for the same block and overtake it on the
    /// (per source→destination FIFO) network — delivering an invalidation
    /// for a copy that has not arrived yet. Directory sends for one block
    /// therefore depart in service order.
    dir_send_order: Vec<HashMap<BlockId, Cycle>>,
    /// Block whose protocol messages are traced to stderr
    /// (`LTP_TRACE_BLOCK=<id>`, read once at construction).
    trace_block: Option<BlockId>,
    /// Whether flag-wait progress is traced (`LTP_TRACE_FLAGS=1`).
    trace_flags: bool,
}

impl Machine {
    /// Assembles a machine from per-node policies and programs.
    ///
    /// # Panics
    ///
    /// Panics unless `policies` and `programs` both have exactly
    /// `cfg.nodes()` elements.
    pub fn new(
        cfg: SystemConfig,
        policies: Vec<Box<dyn SelfInvalidationPolicy>>,
        programs: Vec<Box<dyn Program>>,
    ) -> Self {
        let n = cfg.nodes() as usize;
        assert_eq!(policies.len(), n, "one policy per node");
        assert_eq!(programs.len(), n, "one program per node");
        let nodes: Vec<NodeState> = policies
            .into_iter()
            .zip(programs)
            .enumerate()
            .map(|(i, (policy, program))| NodeState {
                id: NodeId::new(i as u16),
                cache: NodeCache::new(NodeId::new(i as u16)),
                policy,
                program,
                exec: ExecState::Ready,
                lock_failures: 0,
            })
            .collect();
        let dirs = (0..n)
            .map(|i| Directory::with_kind(NodeId::new(i as u16), cfg.directory(), cfg.nodes()))
            .collect();
        let engines = (0..n)
            .map(|_| ProtocolEngine::new(cfg.pipeline_stages()))
            .collect();
        let nis = (0..n).map(|_| NetIface::new(cfg.ni_occupancy())).collect();
        Machine {
            cfg,
            nodes,
            dirs,
            engines,
            nis,
            locks: HashMap::new(),
            flag_waited: HashMap::new(),
            barrier_waiting: BTreeMap::new(),
            finished: 0,
            last_finish: Cycle::ZERO,
            core: None,
            probes: Vec::new(),
            dir_send_order: (0..n).map(|_| HashMap::new()).collect(),
            trace_block: std::env::var("LTP_TRACE_BLOCK")
                .ok()
                .and_then(|v| v.parse().ok())
                .map(BlockId::new),
            trace_flags: std::env::var_os("LTP_TRACE_FLAGS").is_some(),
        }
    }

    /// Schedules the initial `CpuStep` for every node at time zero.
    pub fn prime(&self, queue: &mut EventQueue<Event>) {
        for node in &self.nodes {
            queue.schedule(Cycle::ZERO, Event::CpuStep(node.id));
        }
    }

    /// Whether every processor has finished its program.
    pub fn all_finished(&self) -> bool {
        self.finished == self.nodes.len()
    }

    /// Human-readable stuck-state diagnosis for horizon overruns.
    pub fn stuck_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for n in &self.nodes {
            if !matches!(n.exec, ExecState::Finished) {
                let _ = writeln!(out, "{}: {:?}", n.id, n.exec);
            }
        }
        out
    }

    // ---- observation -----------------------------------------------------

    /// Attaches the built-in core-metrics observer. Without it,
    /// [`Machine::finish`] yields no [`Metrics`].
    pub fn attach_core_metrics(&mut self) {
        self.core = Some(CoreMetricsProbe::new(self.cfg.nodes()));
    }

    /// Attaches one observer; probes see every subsequent event in attach
    /// order.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.probes.push(probe);
    }

    /// Delivers one event to every attached observer.
    ///
    /// `#[inline(always)]`, with the core probe statically dispatched, lets
    /// the optimizer specialize each emission site: core-consumed events
    /// reduce to the same counter increments the pre-probe machine
    /// performed (bounded by the `probe_overhead` bench).
    #[inline(always)]
    fn emit(&mut self, now: Cycle, event: SimEvent) {
        if self.core.is_none() && self.probes.is_empty() {
            return;
        }
        let ctx = ProbeCtx {
            now,
            nodes: self.cfg.nodes(),
        };
        if let Some(core) = &mut self.core {
            core.observe(&ctx, &event);
        }
        for probe in &mut self.probes {
            probe.on_event(&ctx, &event);
        }
    }

    /// Delivers one event that the core-metrics tallies provably ignore
    /// (ops retired, messages sent, lock/barrier activity) to the generic
    /// probes only. The event is built lazily, so with no generic probe
    /// attached — the default stack — these very hot emission points cost
    /// one branch, which is what keeps the core stack's overhead under the
    /// `probe_overhead` acceptance bar.
    #[inline(always)]
    fn emit_aux(&mut self, now: Cycle, event: impl FnOnce() -> SimEvent) {
        if self.probes.is_empty() {
            return;
        }
        let ctx = ProbeCtx {
            now,
            nodes: self.cfg.nodes(),
        };
        let event = event();
        for probe in &mut self.probes {
            probe.on_event(&ctx, &event);
        }
    }

    /// Finishes the run: emits the end-of-run [`SimEvent::PolicyStorage`]
    /// accounting (one event per node, in node order), then consumes the
    /// machine and every observer. Returns the core [`Metrics`] (if
    /// [`Machine::attach_core_metrics`] was called) and one
    /// [`MetricsSection`] per attached probe that produced one.
    pub fn finish(mut self) -> (Option<Metrics>, Vec<MetricsSection>) {
        let now = self.last_finish;
        for i in 0..self.nodes.len() {
            let stats = self.nodes[i].policy.storage();
            let node = self.nodes[i].id;
            self.emit(now, SimEvent::PolicyStorage { node, stats });
        }
        let metrics = self.core.take().map(CoreMetricsProbe::into_metrics);
        let sections = self.probes.drain(..).filter_map(|p| p.finish()).collect();
        (metrics, sections)
    }

    // ---- routing ---------------------------------------------------------

    /// Routes a message from its source at `at`: verification meta-messages
    /// deliver instantly, home-local messages skip the network, and remote
    /// messages serialize through the source NI then cross the network.
    fn route(&mut self, msg: Message, at: Cycle, q: &mut EventQueue<Event>) {
        self.emit_aux(at, || SimEvent::MessageSent { msg });
        if matches!(msg.kind, MsgKind::VerifyCorrect { .. }) {
            q.schedule(at, Event::Arrive(msg));
            return;
        }
        if msg.src == msg.dst {
            q.schedule(at, Event::Arrive(msg));
            return;
        }
        let depart = self.nis[msg.src.index()].depart(at);
        q.schedule(depart + self.cfg.net_latency(), Event::Arrive(msg));
    }

    fn is_directory_bound(kind: MsgKind) -> bool {
        matches!(
            kind,
            MsgKind::GetS
                | MsgKind::GetX
                | MsgKind::Upgrade
                | MsgKind::SelfInvClean
                | MsgKind::SelfInvDirty { .. }
                | MsgKind::InvAck { .. }
        )
    }

    // ---- CPU execution ---------------------------------------------------

    fn cpu_step(&mut self, now: Cycle, p: NodeId, q: &mut EventQueue<Event>) {
        let i = p.index();
        match &self.nodes[i].exec {
            ExecState::Ready => self.fetch_and_issue(now, p, q),
            ExecState::FlagSpin(pc, block) => {
                let (pc, block) = (*pc, *block);
                self.issue_access(now, p, pc, block, false, Continuation::FlagWait(pc), q);
            }
            ExecState::Locking(lock, stage) => {
                let (lock, stage) = (*lock, *stage);
                match stage {
                    LockStage::Test | LockStage::Confirm => self.issue_access(
                        now,
                        p,
                        lock.spin_pc,
                        lock.block,
                        false,
                        if stage == LockStage::Test {
                            Continuation::LockTest(lock)
                        } else {
                            Continuation::LockConfirm(lock)
                        },
                        q,
                    ),
                    LockStage::Tas => self.issue_access(
                        now,
                        p,
                        lock.tas_pc,
                        lock.block,
                        true,
                        Continuation::LockTas(lock),
                        q,
                    ),
                }
            }
            state => unreachable!("CpuStep for {p} in state {state:?}"),
        }
    }

    fn fetch_and_issue(&mut self, now: Cycle, p: NodeId, q: &mut EventQueue<Event>) {
        let i = p.index();
        let Some(op) = self.nodes[i].program.next_op() else {
            self.nodes[i].exec = ExecState::Finished;
            self.finished += 1;
            self.last_finish = self.last_finish.max(now);
            self.emit(now, SimEvent::NodeFinished { node: p });
            // A node finishing shrinks the barrier population; a barrier
            // that was waiting only on this node must now release.
            self.maybe_release_barrier(now, q);
            return;
        };
        self.emit_aux(now, || SimEvent::OpRetired { node: p, op });
        match op {
            Op::Think(c) => {
                q.schedule(now + Cycle::new(c), Event::CpuStep(p));
            }
            Op::Read { pc, block } => {
                self.issue_access(now, p, pc, block, false, Continuation::Plain, q);
            }
            Op::Write { pc, block } => {
                self.issue_access(now, p, pc, block, true, Continuation::Plain, q);
            }
            Op::Lock(lock) => {
                self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                self.issue_access(
                    now,
                    p,
                    lock.spin_pc,
                    lock.block,
                    false,
                    Continuation::LockTest(lock),
                    q,
                );
            }
            Op::Unlock(lock) => {
                self.issue_access(
                    now,
                    p,
                    lock.release_pc,
                    lock.block,
                    true,
                    Continuation::LockRelease(lock),
                    q,
                );
            }
            Op::Barrier(id) => self.barrier_arrive(now, p, id, q),
            Op::FlagSet { pc, block } => {
                // The signalling store is an ordinary write; the flag's
                // generation is the block token the write bumps.
                self.issue_access(now, p, pc, block, true, Continuation::Plain, q);
            }
            Op::FlagWait { pc, block } => {
                self.issue_access(now, p, pc, block, false, Continuation::FlagWait(pc), q);
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one parameter per access attribute
    fn issue_access(
        &mut self,
        now: Cycle,
        p: NodeId,
        pc: Pc,
        block: BlockId,
        is_write: bool,
        cont: Continuation,
        q: &mut EventQueue<Event>,
    ) {
        let i = p.index();
        match self.nodes[i].cache.access(block, is_write) {
            AccessOutcome::Hit { exclusive } => {
                self.emit(
                    now,
                    SimEvent::CacheHit {
                        node: p,
                        block,
                        pc,
                        is_write,
                        exclusive,
                    },
                );
                let fire = self.nodes[i].policy.on_touch(Touch {
                    block,
                    pc,
                    is_write,
                    exclusive,
                    fill: None,
                });
                if fire {
                    self.self_invalidate(now, p, block, q);
                }
                self.complete_access(now + self.cfg.cpu_hit(), p, block, cont, q);
            }
            AccessOutcome::Miss(kind) => {
                self.emit(
                    now,
                    SimEvent::CacheMiss {
                        node: p,
                        block,
                        pc,
                        is_write,
                    },
                );
                self.nodes[i].exec = ExecState::BlockedMem(MemCtx {
                    block,
                    pc,
                    is_write,
                    cont,
                });
                let home = self.cfg.home_of(block);
                self.route(Message::new(p, home, block, kind), now, q);
            }
        }
    }

    /// Finishes an access (hit or fill), advancing lock state machines and
    /// scheduling the processor's next step.
    fn complete_access(
        &mut self,
        resume_at: Cycle,
        p: NodeId,
        block: BlockId,
        cont: Continuation,
        q: &mut EventQueue<Event>,
    ) {
        let i = p.index();
        match cont {
            Continuation::Plain => {
                self.nodes[i].exec = ExecState::Ready;
                q.schedule(resume_at, Event::CpuStep(p));
            }
            Continuation::LockTest(lock) => {
                debug_assert_eq!(block, lock.block);
                let held = self.locks.entry(lock.block).or_default().held;
                if held {
                    // Keep spinning: each retest is a real touch of the lock
                    // block (usually a cache hit, until a release
                    // invalidates the copy).
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    q.schedule(resume_at + Cycle::new(SPIN_INTERVAL), Event::CpuStep(p));
                } else {
                    // Looks free: back off a randomized interval, then
                    // confirm before attempting the RMW.
                    self.nodes[i].lock_failures += 1;
                    let slots = Self::backoff_slots(p, self.nodes[i].lock_failures);
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Confirm);
                    q.schedule(
                        resume_at + Cycle::new(SPIN_INTERVAL * slots),
                        Event::CpuStep(p),
                    );
                }
            }
            Continuation::LockConfirm(lock) => {
                debug_assert_eq!(block, lock.block);
                let held = self.locks.entry(lock.block).or_default().held;
                if held {
                    // Someone won during the backoff: resume spinning
                    // without ever issuing the test-and-set.
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    q.schedule(resume_at + Cycle::new(SPIN_INTERVAL), Event::CpuStep(p));
                } else {
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Tas);
                    q.schedule(resume_at, Event::CpuStep(p));
                }
            }
            Continuation::LockTas(lock) => {
                let word = self.locks.entry(lock.block).or_default();
                if word.held {
                    // Lost the race: back off before spinning again. The
                    // deterministic pseudo-random backoff breaks up the
                    // test-and-set herd so lock-block traces vary per visit
                    // (the raytrace §5.4 effect: "locks spin a variable
                    // number of times per visit").
                    self.nodes[i].lock_failures += 1;
                    let backoff = Self::backoff_slots(p, self.nodes[i].lock_failures);
                    self.nodes[i].exec = ExecState::Locking(lock, LockStage::Test);
                    q.schedule(
                        resume_at + Cycle::new(SPIN_INTERVAL * backoff),
                        Event::CpuStep(p),
                    );
                } else {
                    word.held = true;
                    word.owner = Some(p);
                    self.emit_aux(resume_at, || SimEvent::LockAcquired {
                        node: p,
                        block: lock.block,
                    });
                    self.nodes[i].exec = ExecState::Ready;
                    if lock.exposed {
                        self.sync_boundary(resume_at, p, SyncKind::LockAcquire, q);
                    }
                    q.schedule(resume_at, Event::CpuStep(p));
                }
            }
            Continuation::LockRelease(lock) => {
                let word = self.locks.entry(lock.block).or_default();
                debug_assert_eq!(word.owner, Some(p), "release by non-owner");
                word.held = false;
                word.owner = None;
                self.emit_aux(resume_at, || SimEvent::LockReleased {
                    node: p,
                    block: lock.block,
                });
                self.nodes[i].exec = ExecState::Ready;
                if lock.exposed {
                    self.sync_boundary(resume_at, p, SyncKind::LockRelease, q);
                }
                q.schedule(resume_at, Event::CpuStep(p));
            }
            Continuation::FlagWait(pc) => {
                // Observe the generation from the (possibly stale) cached
                // copy — exactly what real spin code would see.
                let observed = self.nodes[i].cache.line(block).map_or(0, |l| l.token);
                if self.trace_flags {
                    eprintln!(
                        "[{resume_at}] {p} flagwait {block}: observed={observed} waited={:?} line={:?}",
                        self.flag_waited.get(&(p.index() as u16, block)),
                        self.nodes[i].cache.line(block)
                    );
                }
                let waited = self
                    .flag_waited
                    .entry((p.index() as u16, block))
                    .or_insert(0);
                if observed > *waited {
                    *waited += 1;
                    self.nodes[i].exec = ExecState::Ready;
                    q.schedule(resume_at, Event::CpuStep(p));
                } else {
                    self.nodes[i].exec = ExecState::FlagSpin(pc, block);
                    q.schedule(resume_at + Cycle::new(SPIN_INTERVAL), Event::CpuStep(p));
                }
            }
        }
    }

    fn barrier_arrive(&mut self, now: Cycle, p: NodeId, id: u32, q: &mut EventQueue<Event>) {
        // A hard error even in release builds: merging distinct barrier ids
        // into one wait-set would let a malformed workload (a node skipping
        // a barrier) silently release barriers early and desynchronize the
        // run. The panic carries the conflicting ids for diagnosis.
        if let Some((&other, waiters)) = self.barrier_waiting.iter().find(|&(&b, _)| b != id) {
            panic!(
                "{p} arrived at barrier {id} while {} node(s) wait at distinct \
                 barrier {other}: the workload skips or reorders barriers",
                waiters.len()
            );
        }
        self.emit_aux(now, || SimEvent::BarrierEnter { node: p, id });
        self.nodes[p.index()].exec = ExecState::InBarrier(id);
        self.barrier_waiting
            .entry(id)
            .or_default()
            .insert(p.index() as u16);
        self.maybe_release_barrier(now, q);
    }

    /// Releases the pending barrier once every still-running node has
    /// arrived at it. Checked on each arrival and whenever a node finishes.
    fn maybe_release_barrier(&mut self, now: Cycle, q: &mut EventQueue<Event>) {
        let Some((&released_id, waiting)) = self.barrier_waiting.iter().next() else {
            return;
        };
        let participants = self
            .nodes
            .iter()
            .filter(|n| !matches!(n.exec, ExecState::Finished))
            .count();
        if waiting.len() == participants {
            // Everyone arrived: release all, emitting the synchronization
            // boundary DSI hooks (this is where DSI's flush burst happens).
            let waiting: Vec<u16> = self
                .barrier_waiting
                .remove(&released_id)
                .expect("wait-set present")
                .into_iter()
                .collect();
            let waiters = waiting.len() as u16;
            self.emit_aux(now, || SimEvent::BarrierRelease {
                id: released_id,
                waiters,
            });
            for idx in waiting {
                let node = NodeId::new(idx);
                debug_assert!(
                    matches!(self.nodes[node.index()].exec,
                        ExecState::InBarrier(id) if id == released_id),
                    "node released from a barrier it was not waiting at"
                );
                self.nodes[node.index()].exec = ExecState::Ready;
                self.sync_boundary(now, node, SyncKind::Barrier, q);
                q.schedule(now + self.cfg.cpu_hit(), Event::CpuStep(node));
            }
        }
    }

    /// Reports a synchronization boundary to the node's policy and performs
    /// any bulk self-invalidation it requests (DSI's flush).
    fn sync_boundary(&mut self, now: Cycle, p: NodeId, kind: SyncKind, q: &mut EventQueue<Event>) {
        let flushes = self.nodes[p.index()].policy.on_sync(kind);
        for block in flushes {
            self.self_invalidate(now, p, block, q);
        }
    }

    /// Deterministic pseudo-random backoff (in spin-interval slots) after a
    /// failed test-and-set, derived from the node id and its cumulative
    /// failure count so reruns reproduce exactly.
    fn backoff_slots(p: NodeId, failures: u64) -> u64 {
        let mut z = (p.index() as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(failures.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z ^= z >> 29;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        1 + ((z >> 33) % 6)
    }

    /// Executes one self-invalidation: drops the local copy and notifies the
    /// home (clean notification or dirty writeback).
    fn self_invalidate(
        &mut self,
        now: Cycle,
        p: NodeId,
        block: BlockId,
        q: &mut EventQueue<Event>,
    ) {
        let Some(kind) = self.nodes[p.index()].cache.self_invalidate(block) else {
            return; // absent or mid-transaction: skip (bulk flushes may race)
        };
        self.emit(
            now,
            SimEvent::SelfInvalidation {
                node: p,
                block,
                dirty: matches!(kind, MsgKind::SelfInvDirty { .. }),
            },
        );
        let home = self.cfg.home_of(block);
        self.route(Message::new(p, home, block, kind), now, q);
    }

    // ---- message handling ------------------------------------------------

    fn arrive(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<Event>) {
        self.emit(now, SimEvent::MessageDelivered { msg });
        if self.trace_block == Some(msg.block) {
            eprintln!("[{now}] arrive {} -> {}: {:?}", msg.src, msg.dst, msg.kind);
        }
        if Self::is_directory_bound(msg.kind) {
            let h = msg.dst.index();
            if self.engines[h].enqueue(now, msg) {
                let at = self.engines[h].next_ready(now);
                q.schedule(at, Event::EngineDrain(msg.dst));
            }
        } else {
            self.cache_side(now, msg, q);
        }
    }

    fn engine_drain(&mut self, now: Cycle, h: NodeId, q: &mut EventQueue<Event>) {
        let hi = h.index();
        let Some((msg, queued)) = self.engines[hi].dequeue(now) else {
            return;
        };
        let step = self.dirs[hi].process(msg);
        let service = if step.data_service {
            self.cfg.dir_data_service()
        } else {
            self.cfg.dir_control()
        };
        let done = self.engines[hi].begin_service(now, service);
        self.emit(
            now,
            SimEvent::MessageServiced {
                home: h,
                queueing: queued,
                service,
                data: step.data_service,
            },
        );
        for &event in &step.events {
            let block = msg.block;
            self.emit(
                now,
                match event {
                    DirEvent::InvalidationSent { to } => {
                        SimEvent::InvalidationSent { home: h, to, block }
                    }
                    DirEvent::InvalidationAcked { from, had_copy } => SimEvent::InvalidationAcked {
                        home: h,
                        from,
                        block,
                        had_copy,
                    },
                    DirEvent::BroadcastOverflow => SimEvent::BroadcastOverflow { home: h, block },
                    DirEvent::StaleIgnored { from } => SimEvent::StaleIgnored {
                        home: h,
                        from,
                        block,
                        kind: msg.kind,
                    },
                },
            );
        }
        // Clamp departures so sends for one block leave in service order
        // (see `dir_send_order`).
        let depart = {
            let last = self.dir_send_order[hi]
                .entry(msg.block)
                .or_insert(Cycle::ZERO);
            let depart = done.max(*last);
            *last = depart;
            depart
        };
        for m in step.sends {
            debug_assert_eq!(m.block, msg.block, "directory sends stay on-block");
            self.route(m, depart, q);
        }
        for r in step.reinject {
            q.schedule(depart, Event::Arrive(r));
        }
        if self.engines[hi].arm_next_drain() {
            let at = self.engines[hi].next_ready(now);
            q.schedule(at, Event::EngineDrain(h));
        }
    }

    fn cache_side(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<Event>) {
        let p = msg.dst;
        let i = p.index();
        match msg.kind {
            MsgKind::Inv => {
                let resp = self.nodes[i].cache.handle_inv(msg.block);
                self.emit(
                    now,
                    SimEvent::Invalidated {
                        node: p,
                        block: msg.block,
                        had_copy: resp.had_copy,
                    },
                );
                if resp.had_copy {
                    self.nodes[i].policy.on_invalidation(msg.block);
                }
                let home = self.cfg.home_of(msg.block);
                self.route(
                    Message::new(
                        p,
                        home,
                        msg.block,
                        MsgKind::InvAck {
                            had_copy: resp.had_copy,
                            dirty_token: resp.dirty_token,
                        },
                    ),
                    now,
                    q,
                );
            }
            MsgKind::VerifyCorrect { timely } => {
                self.emit(
                    now,
                    SimEvent::PredictionVerified {
                        node: p,
                        block: msg.block,
                        outcome: VerifyOutcome::Correct,
                        timely,
                    },
                );
                self.nodes[i]
                    .policy
                    .on_verification(msg.block, VerifyOutcome::Correct);
            }
            MsgKind::DataS { .. } | MsgKind::DataX { .. } | MsgKind::UpgradeAck { .. } => {
                self.complete_fill(now, msg, q);
            }
            other => unreachable!("cache received {other:?}"),
        }
    }

    fn complete_fill(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<Event>) {
        let p = msg.dst;
        let i = p.index();
        let fill = self.nodes[i].cache.apply_reply(msg.block, msg.kind);
        // Resolve an earlier prediction first (FIFO per block), then start
        // the new trace with this access's touch.
        if let Some(v) = fill.verify {
            // Verdicts piggybacked on fills resolved when this very request
            // reached the directory — never timely.
            self.emit(
                now,
                SimEvent::PredictionVerified {
                    node: p,
                    block: msg.block,
                    outcome: v,
                    timely: false,
                },
            );
            self.nodes[i].policy.on_verification(msg.block, v);
        }
        let ExecState::BlockedMem(ctx) = self.nodes[i].exec else {
            unreachable!("fill for {p} which is not blocked");
        };
        debug_assert_eq!(ctx.block, msg.block, "fill for the wrong block");
        let fire = self.nodes[i].policy.on_touch(Touch {
            block: ctx.block,
            pc: ctx.pc,
            is_write: ctx.is_write,
            exclusive: fill.exclusive,
            fill: Some(fill.info),
        });
        if fire {
            self.self_invalidate(now, p, ctx.block, q);
        }
        // The requester-side network-cache install costs one memory access
        // (this is what stretches the round trip to Table 1's ≈416 cycles).
        self.complete_access(now + self.cfg.mem_access(), p, ctx.block, ctx.cont, q);
    }
}

impl World for Machine {
    type Event = Event;

    fn handle(&mut self, now: Cycle, event: Event, q: &mut EventQueue<Event>) {
        match event {
            Event::CpuStep(p) => self.cpu_step(now, p, q),
            Event::Arrive(msg) => self.arrive(now, msg, q),
            Event::EngineDrain(h) => self.engine_drain(now, h, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_core::NullPolicy;
    use ltp_sim::{Simulation, StopReason};
    use ltp_workloads::LoopedScript;

    fn small_cfg(nodes: u16) -> SystemConfig {
        SystemConfig::builder().nodes(nodes).build().unwrap()
    }

    fn null_policies(n: u16) -> Vec<Box<dyn SelfInvalidationPolicy>> {
        (0..n)
            .map(|_| Box::new(NullPolicy) as Box<dyn SelfInvalidationPolicy>)
            .collect()
    }

    fn run(mut machine: Machine) -> (Metrics, StopReason) {
        machine.attach_core_metrics();
        let mut sim = Simulation::new(machine).with_horizon(Cycle::new(50_000_000));
        {
            let (world, queue) = sim.world_and_queue_mut();
            world.prime(queue);
        }
        let summary = sim.run();
        assert_ne!(
            summary.stop,
            StopReason::HorizonReached,
            "machine stuck:\n{}",
            sim.world().stuck_report()
        );
        let (m, sections) = sim.into_world().finish();
        assert!(sections.is_empty(), "no extra probes attached");
        (m.expect("core metrics attached"), summary.stop)
    }

    fn read(pc: u32, b: u64) -> Op {
        Op::Read {
            pc: Pc::new(pc),
            block: BlockId::new(b),
        }
    }

    fn write(pc: u32, b: u64) -> Op {
        Op::Write {
            pc: Pc::new(pc),
            block: BlockId::new(b),
        }
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|_| Box::new(LoopedScript::new(vec![], vec![], 0)) as Box<dyn Program>)
            .collect();
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (m, _) = run(machine);
        assert!(m.exec_cycles < 10);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn single_remote_read_round_trip_near_416() {
        let cfg = small_cfg(2);
        // Node 1 reads block 0 (home: node 0). One remote miss.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![], vec![], 0)),
            Box::new(LoopedScript::new(vec![read(0x10, 0)], vec![], 0)),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (m, _) = run(machine);
        assert_eq!(m.misses, 1);
        assert!(
            (380..=450).contains(&m.exec_cycles),
            "round trip {} not ≈416",
            m.exec_cycles
        );
    }

    #[test]
    fn producer_consumer_counts_invalidations() {
        let cfg = small_cfg(4);
        // Node 1 writes block 0 then barriers; node 2 reads it after the
        // barrier (invalidating node 1's exclusive copy); others just
        // barrier.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![Op::Barrier(0)], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![write(0x20, 0), Op::Barrier(0)],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![Op::Barrier(0), read(0x30, 0)],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(vec![Op::Barrier(0)], vec![], 0)),
        ];
        let machine = Machine::new(cfg, null_policies(4), programs);
        let (m, _) = run(machine);
        // The read invalidated the writer's copy: one invalidation event,
        // not predicted (base system).
        assert_eq!(m.not_predicted, 1);
        assert_eq!(m.predicted, 0);
        assert_eq!(m.invalidations_sent, 1);
    }

    #[test]
    fn lock_provides_mutual_exclusion_traffic() {
        let cfg = small_cfg(4);
        let lock = Lock::library(BlockId::new(0), 0x100);
        let body = vec![
            Op::Lock(lock),
            write(0x200, 4), // protected block (home: node 0)
            Op::Unlock(lock),
            Op::Think(50),
        ];
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i as u64 * 13)],
                    body.clone(),
                    5,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(4), programs);
        let (m, _) = run(machine);
        // 4 nodes × 5 critical sections each; the protected block migrates,
        // so plenty of invalidations happen and the run completes (mutual
        // exclusion never deadlocks).
        assert!(m.not_predicted > 0);
        assert!(m.misses >= 20, "each CS needs at least one miss");
    }

    #[test]
    fn barrier_synchronizes_all_nodes() {
        let cfg = small_cfg(8);
        let programs: Vec<Box<dyn Program>> = (0..8u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i * 100), Op::Barrier(0), write(0x40, i)],
                    vec![],
                    0,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(8), programs);
        let (m, _) = run(machine);
        // All the writes happen after the slowest node arrives (700+).
        assert!(m.exec_cycles > 700);
        assert_eq!(m.misses, 8);
    }

    /// A policy that self-invalidates after every touch — maximal
    /// speculation pressure on the protocol's race handling.
    #[derive(Debug, Default)]
    struct AlwaysFire {
        fired: u64,
        correct: u64,
        premature: u64,
    }

    impl SelfInvalidationPolicy for AlwaysFire {
        fn name(&self) -> &'static str {
            "always-fire"
        }
        fn on_touch(&mut self, _t: Touch) -> bool {
            self.fired += 1;
            true
        }
        fn on_verification(&mut self, _b: BlockId, outcome: VerifyOutcome) {
            match outcome {
                VerifyOutcome::Correct => self.correct += 1,
                VerifyOutcome::Premature => self.premature += 1,
            }
        }
    }

    #[test]
    fn always_firing_policy_survives_and_gets_verified() {
        // Two nodes ping-ponging a block while self-invalidating after
        // every single touch: the densest possible self-invalidation race
        // load. The run must complete and verification verdicts must flow.
        let cfg = small_cfg(2);
        let mk = |stagger: u64| -> Box<dyn Program> {
            Box::new(LoopedScript::new(
                vec![Op::Think(stagger)],
                vec![
                    write(0x40, 0),
                    Op::Think(300),
                    read(0x44, 1),
                    Op::Think(200),
                ],
                20,
            ))
        };
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = vec![
            Box::new(AlwaysFire::default()),
            Box::new(AlwaysFire::default()),
        ];
        let machine = Machine::new(cfg, policies, vec![mk(0), mk(150)]);
        let (m, _) = run(machine);
        assert!(m.self_invalidations_sent > 10, "speculation actually ran");
        assert!(
            m.predicted + m.mispredicted > 0,
            "the directory verified outcomes"
        );
        // Token monotonicity is asserted inside the directory on every
        // writeback; reaching here means no write was lost.
    }

    #[test]
    fn premature_self_invalidation_is_reported_to_the_culprit() {
        // One node writes the same block repeatedly while always firing:
        // every refetch is by the self-invalidator itself → premature.
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(
                vec![],
                vec![write(0x60, 0), Op::Think(100)],
                10,
            )),
            Box::new(LoopedScript::new(vec![], vec![], 0)),
        ];
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = vec![
            Box::new(AlwaysFire::default()),
            Box::new(AlwaysFire::default()),
        ];
        let machine = Machine::new(cfg, policies, programs);
        let (m, _) = run(machine);
        assert!(m.mispredicted >= 8, "got {} prematures", m.mispredicted);
        assert_eq!(m.predicted, 0, "nobody else ever wants the block");
    }

    #[test]
    fn flag_handoff_pipelines_across_nodes() {
        // A 3-stage pipeline: node 0 signals node 1, node 1 signals node 2.
        let cfg = small_cfg(3);
        let flag = |i: u64| BlockId::new(100 + i);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(
                vec![
                    write(0x10, 0),
                    Op::FlagSet {
                        pc: Pc::new(0x20),
                        block: flag(1),
                    },
                ],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![
                    Op::FlagWait {
                        pc: Pc::new(0x24),
                        block: flag(1),
                    },
                    read(0x14, 0),
                    write(0x18, 1),
                    Op::FlagSet {
                        pc: Pc::new(0x20),
                        block: flag(2),
                    },
                ],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![
                    Op::FlagWait {
                        pc: Pc::new(0x24),
                        block: flag(2),
                    },
                    read(0x1c, 1),
                ],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(3), programs);
        let (m, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
        // The chain forced real coherence transfers of blocks 0 and 1.
        assert!(m.not_predicted >= 2, "handoffs invalidate producer copies");
    }

    #[test]
    fn lock_backoff_is_deterministic() {
        let a = Machine::backoff_slots(NodeId::new(3), 7);
        let b = Machine::backoff_slots(NodeId::new(3), 7);
        assert_eq!(a, b);
        assert!((1..=6).contains(&a));
        // Different nodes and different failure counts spread.
        let spread: std::collections::HashSet<u64> = (0..16u16)
            .map(|n| Machine::backoff_slots(NodeId::new(n), 1))
            .collect();
        assert!(spread.len() > 2, "backoff must not be uniform: {spread:?}");
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        // Under a contended lock with a shared counter block, each holder
        // writes the counter once; the token (write count) at the end must
        // equal the total number of critical sections — no lost updates.
        let cfg = small_cfg(6);
        let lock = Lock::library(BlockId::new(0), 0x100);
        let cs = 4u32;
        let programs: Vec<Box<dyn Program>> = (0..6u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i * 29)],
                    vec![
                        Op::Lock(lock),
                        write(0x200, 7),
                        Op::Unlock(lock),
                        Op::Think(120),
                    ],
                    cs,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(6), programs);
        let mut sim = Simulation::new(machine).with_horizon(Cycle::new(50_000_000));
        {
            let (world, queue) = sim.world_and_queue_mut();
            world.prime(queue);
        }
        let summary = sim.run();
        assert_ne!(summary.stop, StopReason::HorizonReached);
        // Recover the final token by reading the machine's cache state: the
        // last writer holds the newest token (6 nodes × 4 sections).
        let world = sim.world();
        let newest = (0..6)
            .filter_map(|i| world.nodes[i].cache.line(BlockId::new(7)))
            .map(|l| l.token)
            .max()
            .expect("someone holds the counter");
        assert_eq!(newest, u64::from(cs) * 6, "every critical section counted");
    }

    #[test]
    #[should_panic(expected = "distinct barrier")]
    fn skipped_barrier_is_a_hard_error() {
        // Node 0 skips barrier 0 entirely and arrives at barrier 1 while
        // node 1 still waits at barrier 0. The seed silently merged the two
        // wait-sets (debug_assert only); now it is a hard error in release
        // builds too.
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![Op::Barrier(1)], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![Op::Think(100), Op::Barrier(0), Op::Barrier(1)],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let _ = run(machine);
    }

    #[test]
    fn sequential_barrier_ids_release_in_order() {
        // The same nodes passing barriers 0, 1, 2 in lockstep must release
        // each one (per-id wait-sets never mix consecutive phases).
        let cfg = small_cfg(3);
        let programs: Vec<Box<dyn Program>> = (0..3u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![
                        Op::Think(i * 50),
                        Op::Barrier(0),
                        write(0x10, i),
                        Op::Barrier(1),
                        read(0x14, (i + 1) % 3),
                        Op::Barrier(2),
                    ],
                    vec![],
                    0,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(3), programs);
        let (_, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
    }

    #[test]
    fn finished_nodes_do_not_block_barriers() {
        let cfg = small_cfg(2);
        // Node 0 finishes immediately; node 1 then hits a barrier that only
        // it participates in.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![Op::Think(500), Op::Barrier(0)],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (_, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
    }
}
