//! The machine coordinator: shards, windows, and global synchronization.
//!
//! [`Machine`] assembles the full CC-NUMA system — CPUs, caches, policies,
//! directories, protocol engines, and network interfaces — as a set of
//! [`crate::shard`] slices and drives them through conservatively
//! synchronized clock windows:
//!
//! 1. pick the next window `[kL, (k+1)L)` containing the globally earliest
//!    pending event (`L` = minimum cross-node latency, the lookahead);
//! 2. run every shard's slice of that window — independently, on worker
//!    threads when more than one shard is configured;
//! 3. at the boundary, exchange cross-shard messages, merge and replay the
//!    shards' probe logs, and fold barrier arrivals into the global barrier
//!    state (releases are scheduled at the boundary cycle).
//!
//! Because window boundaries lie on a fixed grid, cross-shard messages are
//! stamped with content-derived FIFO keys, and same-cycle events pop in
//! deterministic [`Event`] key order, the run is **bit-identical for every
//! shard count** — `--shards 8` produces the same `RunReport` bytes as a
//! serial run. The serial path *is* the 1-shard instance of the same
//! engine, inlined without threads.
//!
//! Locks are executed as test-and-test-and-set loops over their shared
//! block, with the lock value carried by the block's write-token parity
//! (odd = held), so lock state lives entirely in coherence state and needs
//! no global word — essential for sharding, and faithful to how the paper's
//! benchmarks actually synchronize.
//!
//! The machine keeps **no metrics of its own**: every observable action is
//! emitted as a [`SimEvent`]. Attach the built-in
//! [`crate::probes::CoreMetricsProbe`] via [`Machine::attach_core_metrics`]
//! to reconstruct the classic flat [`Metrics`] (collected per shard,
//! statically dispatched, merged at the end); attach any number of
//! [`Probe`]s for everything else — generic probes observe the merged
//! cross-shard event stream in exact serial order.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;

use ltp_core::{BlockId, NodeId, SelfInvalidationPolicy};
use ltp_dsm::{CombiningTree, SystemConfig};
use ltp_sim::{Cycle, RunSummary, StopReason};
use ltp_workloads::Program;

use crate::metrics::Metrics;
use crate::probe::{MetricsSection, Probe, ProbeCtx, SimEvent};
use crate::probes::CoreMetricsProbe;
use crate::shard::channel::{ProbeEntry, SpinBarrier, SyncEvent, SyncRecord};
use crate::shard::clock::WindowClock;
use crate::shard::{Partition, Shard};

pub use crate::shard::Event;

/// Global barrier bookkeeping, folded from the shards' per-window logs.
///
/// All live (unfinished) nodes must arrive at the *same* barrier id before
/// it releases; a second id showing up while one is collecting is a
/// malformed workload and is rejected with a hard error (not a
/// `debug_assert`), because silently merging distinct barriers would corrupt
/// the release bookkeeping.
///
/// Arrival counting runs through a [`CombiningTree`] (fan-in from
/// [`SystemConfig::barrier_fanin`]) instead of a central wait-set, so a
/// 4096-node barrier costs O(log n) per arrival rather than funnelling
/// every node through one counter. The tree only changes *how* completion
/// is detected: records still fold in the deterministic `(cycle, node)`
/// order and releases are still scheduled at the window-boundary cycle, so
/// release timing — and therefore every simulated cycle count — is
/// bit-identical to the central wait-set at any shard count.
#[derive(Debug)]
struct GlobalSync {
    tree: CombiningTree,
    /// The barrier currently collecting arrivals, with its waiters so far
    /// (kept alongside the tree for the release event and resume fan-out).
    waiting: Option<(u32, Vec<u16>)>,
}

impl GlobalSync {
    fn new(total: u16, fanin: u16) -> Self {
        GlobalSync {
            tree: CombiningTree::new(total, fanin),
            waiting: None,
        }
    }

    /// Folds one window's synchronization records (pre-sorted by
    /// `(cycle, node)` — the deterministic global arrival order) into the
    /// barrier state, returning every barrier that released, in release
    /// order, with its waiters sorted by node index.
    fn fold(&mut self, records: &[SyncRecord]) -> Vec<(u32, Vec<u16>)> {
        let mut released = Vec::new();
        for r in records {
            let complete = match r.ev {
                // A finish shrinks the live population, which can be what
                // completes a partially-arrived barrier.
                SyncEvent::Finish => self.tree.retire(r.node),
                SyncEvent::Arrive(id) => {
                    match &mut self.waiting {
                        Some((other, waiters)) if *other != id => panic!(
                            "{} arrived at barrier {id} while {} node(s) wait at distinct \
                             barrier {other}: the workload skips or reorders barriers",
                            NodeId::new(r.node),
                            waiters.len()
                        ),
                        Some((_, waiters)) => waiters.push(r.node),
                        None => self.waiting = Some((id, vec![r.node])),
                    }
                    self.tree.arrive(r.node)
                }
            };
            // The tree also reports completion when the *last* live node
            // retires with nothing collecting; only a real barrier releases.
            if complete && self.waiting.is_some() {
                let (id, mut waiters) = self.waiting.take().expect("checked above");
                waiters.sort_unstable();
                released.push((id, waiters));
                self.tree.reset_episode();
            }
        }
        released
    }
}

/// Bounded depth of the probe-observer channel, in batches. Deep enough to
/// absorb bursty batches without stalling the simulation, shallow enough to
/// bound the memory held by in-flight logs.
const OBSERVER_DEPTH: usize = 4;

/// Entries accumulated before a batch is handed to the observer thread.
/// Channel hops cost microseconds (mutex + thread wake), so windows are
/// batched until the handoff cost is noise per event.
const OBSERVER_BATCH: usize = 32 * 1024;

/// One unit of work for the probe-observer thread, sent in simulation
/// order.
enum ObserverMsg {
    /// Accumulated per-window, per-shard event logs (chronological outer
    /// order, shard order inner, each unsorted — the observer merges them
    /// into serial emission order).
    Batch(Vec<Vec<ProbeEntry>>),
    /// A barrier release folded at a window boundary; sent after a flush,
    /// so it sits exactly where the serial replay would put it.
    Sync { event: SimEvent, now: Cycle },
}

/// The observer thread disappeared mid-run — a probe panicked (e.g.
/// `check:strict` on a violation). The run stops and the panic payload is
/// re-raised when the sink is finished.
struct ObserverDead;

/// The asynchronous half of [`ProbeSink`]: a dedicated thread that owns the
/// probes for the duration of a run.
struct Observer {
    tx: SyncSender<ObserverMsg>,
    /// Emptied log buffers coming back from the observer for reuse.
    recycle: Receiver<Vec<ProbeEntry>>,
    thread: JoinHandle<Vec<Box<dyn Probe>>>,
    /// Windows accumulated since the last send (outer: chronological,
    /// inner: shard order).
    pending: Vec<Vec<ProbeEntry>>,
    pending_entries: usize,
}

impl Observer {
    /// Moves `probes` onto a fresh observer thread.
    fn spawn(probes: Vec<Box<dyn Probe>>, nodes: u16) -> Self {
        let (tx, rx) = mpsc::sync_channel::<ObserverMsg>(OBSERVER_DEPTH);
        let (recycle_tx, recycle) = mpsc::channel::<Vec<ProbeEntry>>();
        let thread = std::thread::spawn(move || {
            let mut probes = probes;
            let mut scratch: Vec<ProbeEntry> = Vec::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    ObserverMsg::Batch(mut logs) => {
                        scratch.clear();
                        for log in &mut logs {
                            scratch.append(log);
                        }
                        for log in logs {
                            // The coordinator may already be gone; buffers
                            // then simply drop.
                            let _ = recycle_tx.send(log);
                        }
                        replay(&mut scratch, &mut probes, nodes);
                    }
                    ObserverMsg::Sync { event, now } => {
                        let ctx = ProbeCtx { now, nodes };
                        for p in &mut probes {
                            p.on_event(&ctx, &event);
                        }
                    }
                }
            }
            probes
        });
        Observer {
            tx,
            recycle,
            thread,
            pending: Vec::new(),
            pending_entries: 0,
        }
    }

    /// Sends the accumulated batch (if any) to the observer thread.
    fn flush(&mut self) -> Result<(), ObserverDead> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.pending_entries = 0;
        self.tx
            .send(ObserverMsg::Batch(std::mem::take(&mut self.pending)))
            .map_err(|_| ObserverDead)
    }

    /// Joins the observer, recovering the probes. Re-raises the probe's
    /// panic if the thread died on one.
    fn join(mut self) -> Vec<Box<dyn Probe>> {
        let _ = self.flush();
        let Observer {
            tx,
            recycle,
            thread,
            ..
        } = self;
        drop(tx); // close the channel so the thread drains and exits
        drop(recycle);
        match thread.join() {
            Ok(probes) => probes,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// Sorts one batch of log entries into serial emission order and dispatches
/// it. `(at, key)` is globally unique per cycle and the sort is stable, so
/// one handler's emissions stay contiguous and in order; batches cover
/// disjoint ascending window ranges, so batching does not reorder.
fn replay(entries: &mut [ProbeEntry], probes: &mut [Box<dyn Probe>], nodes: u16) {
    entries.sort_by_key(|e| (e.at, e.key));
    for e in entries.iter() {
        let ctx = ProbeCtx { now: e.now, nodes };
        for p in probes.iter_mut() {
            p.on_event(&ctx, &e.event);
        }
    }
}

/// Where window probe logs go: a dedicated observer thread when the host
/// has cores to spare, the calling thread otherwise.
///
/// Generic probes ([`Machine::attach_probe`]) observe the merged cross-shard
/// event stream in exact serial order — but nothing about that order
/// requires the *simulation* to wait for them. On multi-core hosts the
/// machine hands batches of window logs to an observer thread, which
/// merges, sorts, and dispatches them while the shards already run the next
/// window: the simulation's critical path pays only the per-event log
/// append, and the probes' own work (metrics, histograms, the coherence
/// sanitizer) overlaps execution. Drained buffers are recycled, so
/// steady-state logging allocates nothing, and the channel is bounded — a
/// probe slower than the simulation backpressures it instead of
/// accumulating unbounded logs.
///
/// On a single-core host there is nothing to overlap with, so the sink
/// replays each window synchronously at the boundary (the classic
/// behavior), avoiding pure context-switch overhead. Both modes dispatch
/// the identical event sequence, so results are bit-identical.
enum ProbeSink {
    Sync {
        probes: Vec<Box<dyn Probe>>,
        scratch: Vec<ProbeEntry>,
        nodes: u16,
    },
    Async(Observer),
}

impl ProbeSink {
    fn new(probes: Vec<Box<dyn Probe>>, nodes: u16) -> Self {
        let parallel = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1;
        if parallel {
            ProbeSink::Async(Observer::spawn(probes, nodes))
        } else {
            ProbeSink::Sync {
                probes,
                scratch: Vec::new(),
                nodes,
            }
        }
    }

    /// Consumes one window's per-shard logs at a boundary.
    fn window<S: std::ops::DerefMut<Target = Shard>>(
        &mut self,
        shards: &mut [S],
    ) -> Result<(), ObserverDead> {
        match self {
            ProbeSink::Sync {
                probes,
                scratch,
                nodes,
            } => {
                scratch.clear();
                for s in shards.iter_mut() {
                    scratch.append(s.probe_log_mut());
                }
                replay(scratch, probes, *nodes);
                Ok(())
            }
            ProbeSink::Async(obs) => {
                for s in shards.iter_mut() {
                    let mut log = obs.recycle.try_recv().unwrap_or_default();
                    debug_assert!(log.is_empty(), "recycled buffers come back drained");
                    std::mem::swap(s.probe_log_mut(), &mut log);
                    obs.pending_entries += log.len();
                    obs.pending.push(log);
                }
                if obs.pending_entries >= OBSERVER_BATCH {
                    obs.flush()?;
                }
                Ok(())
            }
        }
    }

    /// Dispatches one boundary-time event (barrier releases), in order with
    /// the window entries around it.
    fn sync_event(&mut self, event: SimEvent, now: Cycle) -> Result<(), ObserverDead> {
        match self {
            ProbeSink::Sync { probes, nodes, .. } => {
                let ctx = ProbeCtx { now, nodes: *nodes };
                for p in probes.iter_mut() {
                    p.on_event(&ctx, &event);
                }
                Ok(())
            }
            ProbeSink::Async(obs) => {
                obs.flush()?;
                obs.tx
                    .send(ObserverMsg::Sync { event, now })
                    .map_err(|_| ObserverDead)
            }
        }
    }

    /// Recovers the probes, joining the observer thread if one was spawned.
    /// Re-raises a probe panic from the observer.
    fn finish(self) -> Vec<Box<dyn Probe>> {
        match self {
            ProbeSink::Sync { probes, .. } => probes,
            ProbeSink::Async(obs) => obs.join(),
        }
    }
}

/// The composed CC-NUMA machine.
///
/// Build one with [`Machine::new`] (serial) or [`Machine::with_shards`]
/// (parallel), attach observers ([`Machine::attach_core_metrics`] for the
/// classic flat [`Metrics`], [`Machine::attach_probe`] for anything else),
/// drive it with [`Machine::run`], then call [`Machine::finish`].
///
/// Most users should go through `ltp_system::ExperimentSpec` instead.
#[derive(Debug)]
pub struct Machine {
    cfg: SystemConfig,
    part: Partition,
    clock: WindowClock,
    /// The machine slices. Workers lock their own shard for the duration of
    /// a window; the coordinator locks all of them (uncontended — workers
    /// are parked at the rendezvous barrier) for boundary work. In the
    /// serial path the mutexes are used via `get_mut` and never contended.
    shards: Vec<Mutex<Shard>>,
    sync: GlobalSync,
    /// Attached observers, called in attach order on every event of the
    /// merged stream.
    probes: Vec<Box<dyn Probe>>,
}

impl Machine {
    /// Assembles a serial (single-shard) machine from per-node policies and
    /// programs.
    ///
    /// # Panics
    ///
    /// Panics unless `policies` and `programs` both have exactly
    /// `cfg.nodes()` elements.
    pub fn new(
        cfg: SystemConfig,
        policies: Vec<Box<dyn SelfInvalidationPolicy>>,
        programs: Vec<Box<dyn Program>>,
    ) -> Self {
        Machine::with_shards(cfg, policies, programs, 1)
    }

    /// Assembles a machine partitioned into `shards` worker slices (clamped
    /// to the node count). Results are bit-identical for every value of
    /// `shards`; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics unless `policies` and `programs` both have exactly
    /// `cfg.nodes()` elements, or if `shards` is zero.
    pub fn with_shards(
        cfg: SystemConfig,
        policies: Vec<Box<dyn SelfInvalidationPolicy>>,
        programs: Vec<Box<dyn Program>>,
        shards: usize,
    ) -> Self {
        let n = cfg.nodes() as usize;
        assert_eq!(policies.len(), n, "one policy per node");
        assert_eq!(programs.len(), n, "one program per node");
        let part = Partition::new(cfg.nodes(), shards);
        let clock = WindowClock::new(cfg.min_cross_node_latency());
        let trace_block = std::env::var("LTP_TRACE_BLOCK")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(BlockId::new);
        let trace_flags = std::env::var_os("LTP_TRACE_FLAGS").is_some();
        let mut policies = policies.into_iter();
        let mut programs = programs.into_iter();
        let shards = (0..part.shards())
            .map(|s| {
                let (lo, hi) = part.range(s);
                let count = usize::from(hi - lo);
                Mutex::new(Shard::new(
                    cfg.clone(),
                    part,
                    s,
                    policies.by_ref().take(count).collect(),
                    programs.by_ref().take(count).collect(),
                    trace_block,
                    trace_flags,
                ))
            })
            .collect();
        let sync = GlobalSync::new(cfg.nodes(), cfg.barrier_fanin());
        Machine {
            cfg,
            part,
            clock,
            shards,
            sync,
            probes: Vec::new(),
        }
    }

    /// The number of shards this machine runs on (after clamping to the
    /// node count).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether every processor has finished its program.
    pub fn all_finished(&self) -> bool {
        let done: usize = self.shards.iter().map(|s| lock(s).finished_local()).sum();
        done == self.cfg.nodes() as usize
    }

    /// Human-readable stuck-state diagnosis for horizon overruns.
    pub fn stuck_report(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            lock(s).stuck_report_into(&mut out);
        }
        out
    }

    /// Structured per-node stuck diagnosis (all unfinished nodes, in node
    /// order — shards own contiguous ranges, so concatenation is sorted).
    pub fn stuck_nodes(&self) -> Vec<crate::StuckNode> {
        let mut out = Vec::new();
        for s in &self.shards {
            lock(s).stuck_nodes_into(&mut out);
        }
        out
    }

    /// Host nanoseconds each shard has spent executing its windows (barrier
    /// waits and coordinator boundary work excluded), indexed by shard.
    /// Exact per-shard work under [`Machine::run_single_threaded`] (windows
    /// run unpreempted there); under the threaded run it is only meaningful
    /// when the host has at least one core per shard. The work-partition
    /// view of a run: `serial busy / max shard busy` is the speedup the
    /// partition supports once enough cores exist — the `shard_scaling`
    /// bench's critical-path metric, and the number to look at when a
    /// sharded run scales worse than expected (imbalance shows up as one
    /// outlier shard).
    pub fn shard_busy_ns(&self) -> Vec<u64> {
        self.shards.iter().map(|s| lock(s).busy_ns()).collect()
    }

    /// The write-token of the copy of `block` cached at `p`, if present —
    /// test/debug introspection (e.g. asserting lost-update freedom through
    /// a contended lock; the token counts the block's writes).
    pub fn cached_token(&self, p: NodeId, block: BlockId) -> Option<u64> {
        lock(&self.shards[self.part.shard_of(p)])
            .cached_line(p, block)
            .map(|l| l.token)
    }

    /// Snapshots the machine-wide ground state (every directory record and
    /// cached line) for invariant checking — see
    /// [`crate::checker::quiescence_violations`]. Deterministically sorted.
    pub fn view(&self) -> crate::checker::MachineView {
        let mut view = crate::checker::MachineView {
            nodes: self.cfg.nodes(),
            directory: self.cfg.directory(),
            ..Default::default()
        };
        for s in &self.shards {
            lock(s).view_into(&mut view);
        }
        view.dir_blocks.sort_by_key(|&(home, b, _)| (home, b));
        view.cache_lines.sort_by_key(|&(p, b, _)| (p, b));
        view
    }

    // ---- observation -----------------------------------------------------

    /// Attaches the built-in core-metrics observer. Without it,
    /// [`Machine::finish`] yields no [`Metrics`]. Internally one collector
    /// per shard tallies its own slice (statically dispatched on the hot
    /// path); [`Machine::finish`] merges them — bit-identically, since
    /// nodes and homes are partitioned.
    pub fn attach_core_metrics(&mut self) {
        for s in &mut self.shards {
            lock_mut(s).attach_core(CoreMetricsProbe::new(self.cfg.nodes()));
        }
    }

    /// Attaches one observer; probes see every subsequent event of the
    /// merged cross-shard stream, in attach order. With at least one probe
    /// attached, shards log events during windows and the coordinator
    /// replays the merged log at each boundary — in exact serial emission
    /// order, regardless of the shard count.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.probes.push(probe);
    }

    // ---- execution -------------------------------------------------------

    /// Runs the machine until all events drain or the horizon is exceeded.
    ///
    /// The horizon is enforced at window granularity: whole windows run, so
    /// events inside the final window but past the horizon are still
    /// handled. This keeps the check shard-count-invariant; the horizon is a
    /// deadlock backstop, not a precision instrument.
    pub fn run(&mut self, horizon: Cycle) -> RunSummary {
        let threadless = self.shards.len() == 1;
        self.run_with(horizon, threadless)
    }

    /// Runs the machine exactly like [`Machine::run`], but drives every
    /// shard from the calling thread — no workers, whatever the shard
    /// count. Results are bit-identical to the threaded run (the two share
    /// all window and boundary code); what changes is the host execution:
    /// each shard's window runs unpreempted, so [`Machine::shard_busy_ns`]
    /// measures per-shard work exactly. This is how the `shard_scaling`
    /// bench takes its critical-path measurement, and a useful mode
    /// wherever worker threads are unwelcome (profilers, constrained
    /// hosts).
    pub fn run_single_threaded(&mut self, horizon: Cycle) -> RunSummary {
        self.run_with(horizon, true)
    }

    fn run_with(&mut self, horizon: Cycle, threadless: bool) -> RunSummary {
        let log_events = !self.probes.is_empty();
        for s in &mut self.shards {
            lock_mut(s).set_log_events(log_events);
        }
        // Generic probes move into a sink for the duration of the run — a
        // dedicated observer thread on multi-core hosts, an in-place replay
        // buffer otherwise (see [`ProbeSink`]) — and come back at the end.
        let mut sink =
            log_events.then(|| ProbeSink::new(std::mem::take(&mut self.probes), self.cfg.nodes()));
        let stop = if threadless {
            self.run_threadless(horizon, sink.as_mut())
        } else {
            self.run_parallel(horizon, sink.as_mut())
        };
        if let Some(sink) = sink {
            // Re-raises the probe's own panic if the observer died mid-run
            // (`Err(ObserverDead)` below).
            self.probes = sink.finish();
        }
        let stop = match stop {
            Ok(stop) => stop,
            Err(ObserverDead) => unreachable!("a dead observer re-raises its panic on finish"),
        };
        let mut end_time = Cycle::ZERO;
        let mut events_handled = 0;
        for s in &mut self.shards {
            let s = lock_mut(s);
            end_time = end_time.max(s.last_event_time());
            events_handled += s.events_handled();
        }
        RunSummary {
            end_time,
            events_handled,
            stop,
        }
    }

    /// The threadless engine: every shard's slice of each window runs on
    /// the calling thread, in shard order (generic probes, when attached,
    /// still observe from their own thread). With one shard this is the
    /// serial path — and the reference the worker-thread path is
    /// bit-identical to.
    fn run_threadless(
        &mut self,
        horizon: Cycle,
        mut sink: Option<&mut ProbeSink>,
    ) -> Result<StopReason, ObserverDead> {
        let (shards, sync) = (&mut self.shards, &mut self.sync);
        loop {
            let mut guards: Vec<&mut Shard> = shards.iter_mut().map(lock_mut).collect();
            let Some(t) = guards.iter().filter_map(|s| s.next_event_time()).min() else {
                return Ok(StopReason::Drained);
            };
            if t > horizon {
                return Ok(StopReason::HorizonReached);
            }
            let (start, end) = self.clock.window_of(t);
            for s in &mut guards {
                s.run_window(start, end);
            }
            boundary(&mut guards, sync, sink.as_deref_mut(), self.part, end)?;
        }
    }

    /// The multi-shard engine: persistent workers rendezvous with the
    /// coordinator twice per window on a spin barrier. Worker panics are
    /// caught, the fleet is shut down cleanly, and the first panic is
    /// re-raised on the coordinating thread.
    fn run_parallel(
        &mut self,
        horizon: Cycle,
        mut sink: Option<&mut ProbeSink>,
    ) -> Result<StopReason, ObserverDead> {
        let clock = self.clock;
        let part = self.part;
        let shards = &self.shards;
        let sync = &mut self.sync;
        let barrier = SpinBarrier::new(shards.len() + 1);
        let running = AtomicBool::new(true);
        let win_start = AtomicU64::new(0);
        let win_end = AtomicU64::new(0);
        let panics: Mutex<Vec<Box<dyn Any + Send>>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for shard in shards {
                let (barrier, running, win_start, win_end, panics) =
                    (&barrier, &running, &win_start, &win_end, &panics);
                scope.spawn(move || loop {
                    barrier.wait();
                    if !running.load(Ordering::Acquire) {
                        break;
                    }
                    let start = Cycle::new(win_start.load(Ordering::Acquire));
                    let end = Cycle::new(win_end.load(Ordering::Acquire));
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        lock(shard).run_window(start, end);
                    }));
                    if let Err(payload) = result {
                        lock_raw(panics).push(payload);
                        running.store(false, Ordering::Release);
                    }
                    barrier.wait();
                });
            }
            loop {
                // Boundary phase: workers are parked at the rendezvous, so
                // every lock below is uncontended. Window selection cannot
                // panic; the boundary fold can (malformed barrier
                // workloads), so it runs under catch_unwind to shut the
                // fleet down before re-raising.
                let decision = {
                    let t_min = shards
                        .iter()
                        .filter_map(|s| lock(s).next_event_time())
                        .min();
                    match t_min {
                        None => Some(StopReason::Drained),
                        Some(t) if t > horizon => Some(StopReason::HorizonReached),
                        Some(t) => {
                            let (start, end) = clock.window_of(t);
                            win_start.store(start.as_u64(), Ordering::Release);
                            win_end.store(end.as_u64(), Ordering::Release);
                            None
                        }
                    }
                };
                if let Some(stop) = decision {
                    running.store(false, Ordering::Release);
                    barrier.wait(); // release workers; they observe the flag and exit
                    return Ok(stop);
                }
                barrier.wait(); // workers start the window
                barrier.wait(); // workers finished the window
                if !running.load(Ordering::Acquire) {
                    // A worker panicked inside its window. The others have
                    // completed theirs; release them to exit, then re-raise.
                    barrier.wait();
                    let payload = lock_raw(&panics).pop().expect("panic payload recorded");
                    panic::resume_unwind(payload);
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut guards: Vec<MutexGuard<'_, Shard>> =
                        shards.iter().map(|s| lock(s)).collect();
                    let end = Cycle::new(win_end.load(Ordering::Acquire));
                    boundary(&mut guards, sync, sink.as_deref_mut(), part, end)
                }));
                let fold = match result {
                    Ok(fold) => fold,
                    Err(payload) => {
                        running.store(false, Ordering::Release);
                        barrier.wait(); // release workers; they observe the flag and exit
                        panic::resume_unwind(payload);
                    }
                };
                if fold.is_err() {
                    // The observer thread died (a probe panicked); shut the
                    // fleet down and let the caller re-raise on join.
                    running.store(false, Ordering::Release);
                    barrier.wait(); // release workers; they observe the flag and exit
                    return Err(ObserverDead);
                }
            }
        })
    }

    // ---- teardown --------------------------------------------------------

    /// Finishes the run: merges the per-shard core collectors, emits the
    /// end-of-run [`SimEvent::PolicyStorage`] accounting (one event per
    /// node, in node order), then consumes the machine and every observer.
    /// Returns the core [`Metrics`] (if [`Machine::attach_core_metrics`] was
    /// called) and one [`MetricsSection`] per attached probe that produced
    /// one.
    pub fn finish(mut self) -> (Option<Metrics>, Vec<MetricsSection>) {
        let mut shards: Vec<Shard> = self
            .shards
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect();
        let now = shards
            .iter()
            .map(|s| s.last_finish_local())
            .max()
            .unwrap_or(Cycle::ZERO);
        let mut core: Option<CoreMetricsProbe> = None;
        for s in &mut shards {
            if let Some(c) = s.take_core() {
                match &mut core {
                    None => core = Some(c),
                    Some(acc) => acc.merge(&c),
                }
            }
        }
        let ctx = ProbeCtx {
            now,
            nodes: self.cfg.nodes(),
        };
        // Shards own contiguous ascending node ranges, so iterating shards
        // then local nodes is global node order.
        for s in &shards {
            for i in 0..s.node_count() {
                let (node, stats) = s.policy_storage(i);
                let event = SimEvent::PolicyStorage { node, stats };
                if let Some(core) = &mut core {
                    core.observe(&ctx, &event);
                }
                for probe in &mut self.probes {
                    probe.on_event(&ctx, &event);
                }
            }
        }
        let metrics = core.map(CoreMetricsProbe::into_metrics);
        let sections = self.probes.drain(..).filter_map(|p| p.finish()).collect();
        (metrics, sections)
    }
}

/// Locks a shard, shrugging off poison: a worker panic poisons its mutex,
/// but the coordinator still needs the state for diagnosis/teardown, and
/// the panic itself is re-raised separately.
fn lock<'a>(m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// `get_mut` with the same poison handling (serial path and `&mut`
/// accessors — no locking at all).
fn lock_mut(m: &mut Mutex<Shard>) -> &mut Shard {
    m.get_mut().unwrap_or_else(|p| p.into_inner())
}

/// Poison-tolerant lock for the panic-payload slot itself.
fn lock_raw<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One window boundary: cross-shard message exchange, probe-log handoff to
/// the sink, and the global barrier fold. Shared verbatim by the serial and
/// parallel paths — `S` is `&mut Shard` or a mutex guard. Returns `Err`
/// when the sink's observer thread has died (a probe panicked).
fn boundary<S: std::ops::DerefMut<Target = Shard>>(
    shards: &mut [S],
    sync: &mut GlobalSync,
    mut sink: Option<&mut ProbeSink>,
    part: Partition,
    end: Cycle,
) -> Result<(), ObserverDead> {
    // 1. Redistribute cross-shard messages into their destination queues.
    //    Delivery cycles are ≥ `end` by the conservative lookahead, so every
    //    message lands in a window that has not run yet.
    let outboxes: Vec<_> = shards.iter_mut().map(|s| s.take_outboxes()).collect();
    for (src, per_dst) in outboxes.into_iter().enumerate() {
        for (dst, stamped) in per_dst.into_iter().enumerate() {
            debug_assert!(
                dst != src || stamped.is_empty(),
                "same-shard messages are scheduled directly, never boxed"
            );
            for st in stamped {
                debug_assert!(
                    st.deliver >= end,
                    "cross-shard delivery at {} inside the window ending {end}",
                    st.deliver
                );
                shards[dst].schedule_inbound(st);
            }
        }
    }
    // 2. Hand the shards' event logs (in shard order) to the probe sink —
    //    replayed in place, or batched to the observer thread so the probes'
    //    work overlaps the next window (see [`ProbeSink`]).
    if let Some(sink) = sink.as_deref_mut() {
        sink.window(shards)?;
    }
    // 3. Fold barrier arrivals and completions (in global `(cycle, node)`
    //    order) and schedule releases at the boundary cycle — a grid point,
    //    hence identical for every shard count.
    let mut records: Vec<SyncRecord> = Vec::new();
    for s in shards.iter_mut() {
        records.append(&mut s.take_sync_log());
    }
    if !records.is_empty() {
        records.sort_by_key(|r| (r.at, r.node));
        for (id, waiters) in sync.fold(&records) {
            let event = SimEvent::BarrierRelease {
                id,
                waiters: waiters.len() as u16,
            };
            if let Some(sink) = sink.as_deref_mut() {
                sink.sync_event(event, end)?;
            }
            for w in waiters {
                let node = NodeId::new(w);
                shards[part.shard_of(node)].schedule_resume(end, node, id);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_core::{NullPolicy, Pc, Touch, VerifyOutcome};
    use ltp_sim::StopReason;
    use ltp_workloads::{Lock, LoopedScript, Op};

    fn small_cfg(nodes: u16) -> SystemConfig {
        SystemConfig::builder().nodes(nodes).build().unwrap()
    }

    fn null_policies(n: u16) -> Vec<Box<dyn SelfInvalidationPolicy>> {
        (0..n)
            .map(|_| Box::new(NullPolicy) as Box<dyn SelfInvalidationPolicy>)
            .collect()
    }

    fn run(mut machine: Machine) -> (Metrics, StopReason) {
        machine.attach_core_metrics();
        let summary = machine.run(Cycle::new(50_000_000));
        assert_ne!(
            summary.stop,
            StopReason::HorizonReached,
            "machine stuck:\n{}",
            machine.stuck_report()
        );
        let (m, sections) = machine.finish();
        assert!(sections.is_empty(), "no extra probes attached");
        (m.expect("core metrics attached"), summary.stop)
    }

    fn read(pc: u32, b: u64) -> Op {
        Op::Read {
            pc: Pc::new(pc),
            block: BlockId::new(b),
        }
    }

    fn write(pc: u32, b: u64) -> Op {
        Op::Write {
            pc: Pc::new(pc),
            block: BlockId::new(b),
        }
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|_| Box::new(LoopedScript::new(vec![], vec![], 0)) as Box<dyn Program>)
            .collect();
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (m, _) = run(machine);
        assert!(m.exec_cycles < 10);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn single_remote_read_round_trip_near_416() {
        let cfg = small_cfg(2);
        // Node 1 reads block 0 (home: node 0). One remote miss.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![], vec![], 0)),
            Box::new(LoopedScript::new(vec![read(0x10, 0)], vec![], 0)),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (m, _) = run(machine);
        assert_eq!(m.misses, 1);
        assert!(
            (380..=450).contains(&m.exec_cycles),
            "round trip {} not ≈416",
            m.exec_cycles
        );
    }

    #[test]
    fn producer_consumer_counts_invalidations() {
        let cfg = small_cfg(4);
        // Node 1 writes block 0 then barriers; node 2 reads it after the
        // barrier (invalidating node 1's exclusive copy); others just
        // barrier.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![Op::Barrier(0)], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![write(0x20, 0), Op::Barrier(0)],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![Op::Barrier(0), read(0x30, 0)],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(vec![Op::Barrier(0)], vec![], 0)),
        ];
        let machine = Machine::new(cfg, null_policies(4), programs);
        let (m, _) = run(machine);
        // The read invalidated the writer's copy: one invalidation event,
        // not predicted (base system).
        assert_eq!(m.not_predicted, 1);
        assert_eq!(m.predicted, 0);
        assert_eq!(m.invalidations_sent, 1);
    }

    #[test]
    fn lock_provides_mutual_exclusion_traffic() {
        let cfg = small_cfg(4);
        let lock = Lock::library(BlockId::new(0), 0x100);
        let body = vec![
            Op::Lock(lock),
            write(0x200, 4), // protected block (home: node 0)
            Op::Unlock(lock),
            Op::Think(50),
        ];
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i as u64 * 13)],
                    body.clone(),
                    5,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(4), programs);
        let (m, _) = run(machine);
        // 4 nodes × 5 critical sections each; the protected block migrates,
        // so plenty of invalidations happen and the run completes (mutual
        // exclusion never deadlocks).
        assert!(m.not_predicted > 0);
        assert!(m.misses >= 20, "each CS needs at least one miss");
    }

    #[test]
    fn barrier_synchronizes_all_nodes() {
        let cfg = small_cfg(8);
        let programs: Vec<Box<dyn Program>> = (0..8u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i * 100), Op::Barrier(0), write(0x40, i)],
                    vec![],
                    0,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(8), programs);
        let (m, _) = run(machine);
        // All the writes happen after the slowest node arrives (700+).
        assert!(m.exec_cycles > 700);
        assert_eq!(m.misses, 8);
    }

    /// A policy that self-invalidates after every touch — maximal
    /// speculation pressure on the protocol's race handling.
    #[derive(Debug, Default)]
    struct AlwaysFire {
        fired: u64,
        correct: u64,
        premature: u64,
    }

    impl SelfInvalidationPolicy for AlwaysFire {
        fn name(&self) -> &'static str {
            "always-fire"
        }
        fn on_touch(&mut self, _t: Touch) -> bool {
            self.fired += 1;
            true
        }
        fn on_verification(&mut self, _b: BlockId, outcome: VerifyOutcome) {
            match outcome {
                VerifyOutcome::Correct => self.correct += 1,
                VerifyOutcome::Premature => self.premature += 1,
            }
        }
    }

    #[test]
    fn always_firing_policy_survives_and_gets_verified() {
        // Two nodes ping-ponging a block while self-invalidating after
        // every single touch: the densest possible self-invalidation race
        // load. The run must complete and verification verdicts must flow.
        let cfg = small_cfg(2);
        let mk = |stagger: u64| -> Box<dyn Program> {
            Box::new(LoopedScript::new(
                vec![Op::Think(stagger)],
                vec![
                    write(0x40, 0),
                    Op::Think(300),
                    read(0x44, 1),
                    Op::Think(200),
                ],
                20,
            ))
        };
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = vec![
            Box::new(AlwaysFire::default()),
            Box::new(AlwaysFire::default()),
        ];
        let machine = Machine::new(cfg, policies, vec![mk(0), mk(150)]);
        let (m, _) = run(machine);
        assert!(m.self_invalidations_sent > 10, "speculation actually ran");
        assert!(
            m.predicted + m.mispredicted > 0,
            "the directory verified outcomes"
        );
        // Token monotonicity is asserted inside the directory on every
        // writeback; reaching here means no write was lost.
    }

    #[test]
    fn premature_self_invalidation_is_reported_to_the_culprit() {
        // One node writes the same block repeatedly while always firing:
        // every refetch is by the self-invalidator itself → premature.
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(
                vec![],
                vec![write(0x60, 0), Op::Think(100)],
                10,
            )),
            Box::new(LoopedScript::new(vec![], vec![], 0)),
        ];
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = vec![
            Box::new(AlwaysFire::default()),
            Box::new(AlwaysFire::default()),
        ];
        let machine = Machine::new(cfg, policies, programs);
        let (m, _) = run(machine);
        assert!(m.mispredicted >= 8, "got {} prematures", m.mispredicted);
        assert_eq!(m.predicted, 0, "nobody else ever wants the block");
    }

    #[test]
    fn flag_handoff_pipelines_across_nodes() {
        // A 3-stage pipeline: node 0 signals node 1, node 1 signals node 2.
        let cfg = small_cfg(3);
        let flag = |i: u64| BlockId::new(100 + i);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(
                vec![
                    write(0x10, 0),
                    Op::FlagSet {
                        pc: Pc::new(0x20),
                        block: flag(1),
                    },
                ],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![
                    Op::FlagWait {
                        pc: Pc::new(0x24),
                        block: flag(1),
                    },
                    read(0x14, 0),
                    write(0x18, 1),
                    Op::FlagSet {
                        pc: Pc::new(0x20),
                        block: flag(2),
                    },
                ],
                vec![],
                0,
            )),
            Box::new(LoopedScript::new(
                vec![
                    Op::FlagWait {
                        pc: Pc::new(0x24),
                        block: flag(2),
                    },
                    read(0x1c, 1),
                ],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(3), programs);
        let (m, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
        // The chain forced real coherence transfers of blocks 0 and 1.
        assert!(m.not_predicted >= 2, "handoffs invalidate producer copies");
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        // Under a contended lock with a shared counter block, each holder
        // writes the counter once; the token (write count) at the end must
        // equal the total number of critical sections — no lost updates.
        let cfg = small_cfg(6);
        let lock = Lock::library(BlockId::new(0), 0x100);
        let cs = 4u32;
        let programs: Vec<Box<dyn Program>> = (0..6u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i * 29)],
                    vec![
                        Op::Lock(lock),
                        write(0x200, 7),
                        Op::Unlock(lock),
                        Op::Think(120),
                    ],
                    cs,
                )) as Box<dyn Program>
            })
            .collect();
        let mut machine = Machine::new(cfg, null_policies(6), programs);
        let summary = machine.run(Cycle::new(50_000_000));
        assert_ne!(summary.stop, StopReason::HorizonReached);
        // Recover the final token from cache state: the last writer holds
        // the newest token (6 nodes × 4 sections).
        let newest = (0..6)
            .filter_map(|i| machine.cached_token(NodeId::new(i), BlockId::new(7)))
            .max()
            .expect("someone holds the counter");
        assert_eq!(newest, u64::from(cs) * 6, "every critical section counted");
    }

    #[test]
    #[should_panic(expected = "distinct barrier")]
    fn skipped_barrier_is_a_hard_error() {
        // Node 0 skips barrier 0 entirely and arrives at barrier 1 while
        // node 1 still waits at barrier 0. The seed silently merged the two
        // wait-sets (debug_assert only); now it is a hard error in release
        // builds too.
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![Op::Barrier(1)], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![Op::Think(100), Op::Barrier(0), Op::Barrier(1)],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let _ = run(machine);
    }

    #[test]
    fn sequential_barrier_ids_release_in_order() {
        // The same nodes passing barriers 0, 1, 2 in lockstep must release
        // each one (per-id wait-sets never mix consecutive phases).
        let cfg = small_cfg(3);
        let programs: Vec<Box<dyn Program>> = (0..3u64)
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![
                        Op::Think(i * 50),
                        Op::Barrier(0),
                        write(0x10, i),
                        Op::Barrier(1),
                        read(0x14, (i + 1) % 3),
                        Op::Barrier(2),
                    ],
                    vec![],
                    0,
                )) as Box<dyn Program>
            })
            .collect();
        let machine = Machine::new(cfg, null_policies(3), programs);
        let (_, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
    }

    #[test]
    fn finished_nodes_do_not_block_barriers() {
        let cfg = small_cfg(2);
        // Node 0 finishes immediately; node 1 then hits a barrier that only
        // it participates in.
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![Op::Think(500), Op::Barrier(0)],
                vec![],
                0,
            )),
        ];
        let machine = Machine::new(cfg, null_policies(2), programs);
        let (_, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
    }

    /// Builds the contended-lock + barrier workload used for shard
    /// equivalence checks: every machine-level mechanism (locks, barriers,
    /// flags, invalidations, reinjections) in one pot.
    fn mixed_workload(nodes: u16) -> (SystemConfig, Vec<Box<dyn Program>>) {
        let cfg = small_cfg(nodes);
        let lock = Lock::library(BlockId::new(0), 0x100);
        let programs: Vec<Box<dyn Program>> = (0..u64::from(nodes))
            .map(|i| {
                Box::new(LoopedScript::new(
                    vec![Op::Think(i * 17), Op::Barrier(0)],
                    vec![
                        Op::Lock(lock),
                        write(0x200, 7),
                        Op::Unlock(lock),
                        read(0x210, 3 + i % 4),
                        write(0x214, 11 + i % 3),
                        Op::Think(60 + i * 7),
                        Op::Barrier(1),
                    ],
                    3,
                )) as Box<dyn Program>
            })
            .collect();
        (cfg, programs)
    }

    #[test]
    fn sharded_runs_match_serial_exactly() {
        let serial = {
            let (cfg, programs) = mixed_workload(6);
            run(Machine::new(cfg, null_policies(6), programs))
        };
        for shards in [2usize, 3, 4, 6] {
            let (cfg, programs) = mixed_workload(6);
            let sharded = run(Machine::with_shards(
                cfg,
                null_policies(6),
                programs,
                shards,
            ));
            assert_eq!(serial, sharded, "{shards}-shard run diverged from serial");
        }
    }

    #[test]
    fn one_shard_machine_is_the_serial_path() {
        let (cfg, programs) = mixed_workload(4);
        let machine = Machine::with_shards(cfg, null_policies(4), programs, 1);
        assert_eq!(machine.shards(), 1);
        let (m, stop) = run(machine);
        assert_eq!(stop, StopReason::Drained);
        assert!(m.misses > 0);
    }

    #[test]
    fn worker_panic_is_reraised_not_deadlocked() {
        // A 2-shard machine whose shard-1 node skips a barrier: the fold
        // panics on the coordinator at a boundary. The fleet must shut down
        // and the panic must surface (not hang the scope).
        let cfg = small_cfg(2);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(LoopedScript::new(vec![Op::Barrier(1)], vec![], 0)),
            Box::new(LoopedScript::new(
                vec![Op::Think(100), Op::Barrier(0)],
                vec![],
                0,
            )),
        ];
        let mut machine = Machine::with_shards(cfg, null_policies(2), programs, 2);
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            machine.run(Cycle::new(50_000_000));
        }))
        .expect_err("malformed barrier workload must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("distinct barrier"), "unexpected panic: {msg}");
    }
}
