//! The offline predictor tournament: many predictor specs raced over the
//! same workloads, without simulating the machine.
//!
//! Where [`crate::SweepSpec`] runs full cycle-accurate simulations,
//! [`PredictSpec`] drains each workload through the logical coherence
//! replay ([`ltp_workloads::replay`]) — identical touches, fills,
//! invalidations, and verification verdicts, no cycles — and tallies each
//! predictor's accuracy, coverage, and timeliness
//! ([`ltp_core::PredictStats`]). One job per (workload × predictor),
//! fanned out over worker threads; results are returned in row-major
//! order (predictor varies fastest) regardless of which worker finishes
//! first, so a parallel tournament renders bit-identically to a serial
//! one.
//!
//! Specs that report [`wants_ground_truth`] (the `oracle`) trigger one
//! extra baseline replay per workload; the extracted per-node last-touch
//! ordinals are shared across every job on that workload.
//!
//! [`render_markdown`] turns the rows into the committed
//! `reports/predictors.md` table — fully deterministic (no timestamps, no
//! timings), so CI regenerates and byte-compares it.
//!
//! [`wants_ground_truth`]: ltp_core::SelfInvalidationPolicy::wants_ground_truth
//!
//! # Examples
//!
//! ```
//! use ltp_core::PolicyRegistry;
//! use ltp_system::predict::{render_markdown, PredictSpec};
//! use ltp_workloads::Benchmark;
//!
//! let registry = PolicyRegistry::with_builtins();
//! let rows = PredictSpec::new()
//!     .benchmark(Benchmark::Em3d)
//!     .policy_specs(&registry, &["ltp", "oracle"])
//!     .unwrap()
//!     .quick_geometry(4, 3)
//!     .execute();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[1].stats.accuracy_pct(), Some(100.0), "the oracle is ideal");
//! let table = render_markdown(&rows);
//! assert!(table.contains("| em3d |"));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

use ltp_core::{
    BlockId, Fingerprint, FingerprintHasher, JsonObject, JsonValue, PolicyFactory, PolicyRegistry,
    PolicySpecError, PredictStats, PredictorConfig, PrematurePenalty, SelfInvalidationPolicy,
    StorageStats,
};
use ltp_workloads::{
    ground_truth, replay, Benchmark, StreamingTrace, Trace, WorkloadParams, WorkloadSource,
};

/// Per-node last-touch ground truth, computed once per workload and
/// shared (via `Arc`) by every job that replays it.
type SharedTruth = Arc<Vec<Vec<(BlockId, u64)>>>;

/// The default tournament field: the paper's three trace predictors, the
/// single-PC strawman, the two adapted branch-predictor designs, and the
/// ideal oracle.
pub const DEFAULT_ZOO: [&str; 7] = [
    "ltp:bits=13",
    "ltp-global",
    "ltp-xor",
    "last-pc",
    "tage:tables=4",
    "perceptron:bits=8",
    "oracle",
];

/// A tournament: workload sources × predictor specs, replayed offline in
/// parallel.
#[derive(Debug, Clone)]
pub struct PredictSpec {
    sources: Vec<WorkloadSource>,
    policies: Vec<Arc<dyn PolicyFactory>>,
    workload: WorkloadParams,
    predictor: PredictorConfig,
    threads: Option<usize>,
}

/// One tournament result: a predictor's tallies on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRow {
    /// Workload source name.
    pub workload: String,
    /// Canonical predictor spec string.
    pub spec: String,
    /// Nodes replayed.
    pub nodes: u16,
    /// Program operations executed.
    pub ops: u64,
    /// Prediction tallies merged across nodes.
    pub stats: PredictStats,
    /// Predictor storage summed across nodes (widest signature reported).
    pub storage: StorageStats,
    /// Wall-clock nanoseconds spent inside the replay (excluded from
    /// [`render_markdown`] — reports stay deterministic).
    pub elapsed_nanos: u64,
}

impl PredictRow {
    /// Renders the row as a JSON object (includes the timing).
    pub fn to_json(&self) -> JsonValue {
        let stats = JsonObject::new()
            .field("touches", self.stats.touches)
            .field("fires", self.stats.fires)
            .field("correct", self.stats.correct)
            .field("premature", self.stats.premature)
            .field("not_predicted", self.stats.not_predicted)
            .field("unresolved", self.stats.unresolved)
            .field(
                "accuracy_pct",
                self.stats
                    .accuracy_pct()
                    .map_or(JsonValue::Null, JsonValue::F64),
            )
            .field(
                "coverage_pct",
                self.stats
                    .coverage_pct()
                    .map_or(JsonValue::Null, JsonValue::F64),
            )
            .field(
                "mean_lead",
                self.stats
                    .mean_lead()
                    .map_or(JsonValue::Null, JsonValue::F64),
            )
            .build();
        let storage = JsonObject::new()
            .field("blocks_tracked", self.storage.blocks_tracked)
            .field("live_entries", self.storage.live_entries)
            .field("signature_bits", self.storage.signature_bits)
            .build();
        JsonObject::new()
            .field("workload", self.workload.as_str())
            .field("predictor", self.spec.as_str())
            .field("nodes", self.nodes)
            .field("ops", self.ops)
            .field("stats", stats)
            .field("storage", storage)
            .field("elapsed_nanos", self.elapsed_nanos)
            .build()
    }
}

impl Default for PredictSpec {
    fn default() -> Self {
        PredictSpec::new()
    }
}

impl PredictSpec {
    /// An empty tournament: no workloads, no predictors, the default
    /// geometry, automatic parallelism.
    pub fn new() -> Self {
        PredictSpec {
            sources: Vec::new(),
            policies: Vec::new(),
            workload: WorkloadParams::default(),
            predictor: PredictorConfig::default(),
            threads: None,
        }
    }

    /// Adds one workload source.
    pub fn source(mut self, source: impl Into<WorkloadSource>) -> Self {
        self.sources.push(source.into());
        self
    }

    /// Adds one benchmark.
    pub fn benchmark(self, benchmark: Benchmark) -> Self {
        self.source(benchmark)
    }

    /// Adds several benchmarks.
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.sources
            .extend(benchmarks.into_iter().map(WorkloadSource::from));
        self
    }

    /// Adds the whole nine-application Table 2 suite.
    pub fn all_benchmarks(self) -> Self {
        self.benchmarks(Benchmark::ALL)
    }

    /// Adds one recorded trace (replays at its recorded geometry).
    pub fn trace(self, trace: Arc<Trace>) -> Self {
        self.source(trace)
    }

    /// Adds one trace streamed incrementally from its file.
    pub fn streaming_trace(self, trace: Arc<StreamingTrace>) -> Self {
        self.source(trace)
    }

    /// Adds one predictor factory.
    pub fn policy(mut self, policy: Arc<dyn PolicyFactory>) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds one predictor resolved from a spec string.
    ///
    /// # Errors
    ///
    /// Returns the [`PolicySpecError`] from the registry.
    pub fn policy_spec(
        mut self,
        registry: &PolicyRegistry,
        spec: &str,
    ) -> Result<Self, PolicySpecError> {
        self.policies.push(registry.parse(spec)?);
        Ok(self)
    }

    /// Adds several predictors resolved from spec strings.
    ///
    /// # Errors
    ///
    /// Returns the first [`PolicySpecError`] encountered.
    pub fn policy_specs(
        mut self,
        registry: &PolicyRegistry,
        specs: &[&str],
    ) -> Result<Self, PolicySpecError> {
        for spec in specs {
            self = self.policy_spec(registry, spec)?;
        }
        Ok(self)
    }

    /// Adds the [`DEFAULT_ZOO`].
    ///
    /// # Errors
    ///
    /// Returns a [`PolicySpecError`] only if the registry was stripped of a
    /// builtin.
    pub fn default_zoo(self, registry: &PolicyRegistry) -> Result<Self, PolicySpecError> {
        self.policy_specs(registry, &DEFAULT_ZOO)
    }

    /// Sets the workload geometry (trace sources pin their own).
    pub fn geometry(mut self, params: WorkloadParams) -> Self {
        self.workload = params;
        self
    }

    /// Shorthand for [`Self::geometry`] with a quick test geometry.
    pub fn quick_geometry(self, nodes: u16, iterations: u32) -> Self {
        self.geometry(WorkloadParams::quick(nodes, iterations))
    }

    /// Sets the predictor tuning knobs shared by every job.
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }

    /// Caps worker threads; `0` restores automatic sizing.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Forces serial execution.
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Number of jobs (sources × predictors).
    pub fn len(&self) -> usize {
        self.sources.len() * self.policies.len()
    }

    /// Whether the tournament is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The campaign-store hash of this tournament's inputs: workloads (at
    /// their effective geometry), predictor specs in order, and predictor
    /// tuning, canonicalized with the same field discipline as
    /// [`crate::campaign::run_fingerprint`] and versioned by the same
    /// [`crate::campaign::STORE_FORMAT_VERSION`].
    ///
    /// The committed `reports/predictors.md` carries this hash in its
    /// provenance footer, so a regenerated report states exactly which
    /// trace/spec set produced it — two tables are comparable only when
    /// their fingerprints match.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.update_str("ltp-predict-tournament");
        h.update_u64(u64::from(crate::campaign::STORE_FORMAT_VERSION));
        h.update_u64(self.sources.len() as u64);
        for source in &self.sources {
            let workload = source.effective_params(self.workload);
            match source {
                WorkloadSource::Synthetic(benchmark) => {
                    h.update_str("bench");
                    h.update_str(benchmark.name());
                }
                // Buffered and streaming replay are bit-identical, so both
                // trace kinds hash alike (as in the campaign store).
                WorkloadSource::Trace(trace) => {
                    h.update_str("trace");
                    h.update_str(trace.name());
                    h.update_u64(trace.total_ops());
                }
                WorkloadSource::StreamingTrace(trace) => {
                    h.update_str("trace");
                    h.update_str(trace.name());
                    h.update_u64(trace.total_ops());
                }
            }
            h.update_u64(u64::from(workload.nodes));
            h.update_u64(workload.seed);
            match workload.iterations {
                Some(iters) => {
                    h.update_str("iters");
                    h.update_u64(u64::from(iters));
                }
                None => h.update_str("natural"),
            }
        }
        h.update_u64(self.policies.len() as u64);
        for policy in &self.policies {
            h.update_str(&policy.spec());
        }
        h.update_u64(u64::from(self.predictor.initial_confidence));
        h.update_str(match self.predictor.premature_penalty {
            PrematurePenalty::Weaken => "weaken",
            PrematurePenalty::Reset => "reset",
        });
        h.update_u64(u64::from(self.predictor.self_invalidate_shared));
        h.finish()
    }

    /// Builds one job's policies and runs its replay.
    fn run_job(
        &self,
        source: &WorkloadSource,
        factory: &Arc<dyn PolicyFactory>,
        truth: Option<&SharedTruth>,
    ) -> PredictRow {
        let params = source.effective_params(self.workload);
        let programs = source
            .programs(&params)
            .unwrap_or_else(|e| panic!("workload {} failed to build: {e}", source.name()));
        let mut policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..params.nodes)
            .map(|_| factory.build(self.predictor))
            .collect();
        if let Some(truth) = truth {
            for (policy, node_truth) in policies.iter_mut().zip(truth.iter()) {
                policy.prime_last_touches(node_truth);
            }
        }
        let start = Instant::now();
        let report = replay(programs, &mut policies, false);
        let elapsed_nanos = start.elapsed().as_nanos() as u64;
        let stats = report
            .stats
            .iter()
            .fold(PredictStats::default(), |mut acc, s| {
                acc.merge(s);
                acc
            });
        let storage =
            policies
                .iter()
                .map(|p| p.storage())
                .fold(StorageStats::default(), |mut acc, s| {
                    acc.blocks_tracked += s.blocks_tracked;
                    acc.live_entries += s.live_entries;
                    acc.signature_bits = acc.signature_bits.max(s.signature_bits);
                    acc
                });
        PredictRow {
            workload: source.name().to_string(),
            spec: factory.spec(),
            nodes: params.nodes,
            ops: report.ops,
            stats,
            storage,
            elapsed_nanos,
        }
    }

    /// Runs every job, returning rows in row-major (source × predictor)
    /// order. Parallelism changes wall-clock time only.
    ///
    /// # Panics
    ///
    /// Panics if a workload fails to build its programs or a replay
    /// deadlocks, mirroring [`crate::SweepSpec::execute`].
    pub fn execute(&self) -> Vec<PredictRow> {
        // One baseline replay per source, only when some predictor in the
        // field asks for ground truth; shared by every job on that source.
        let needs_truth = self
            .policies
            .iter()
            .any(|f| f.build(self.predictor).wants_ground_truth());
        let truths: Vec<Option<SharedTruth>> = self
            .sources
            .iter()
            .map(|source| {
                needs_truth.then(|| {
                    let params = source.effective_params(self.workload);
                    let programs = source.programs(&params).unwrap_or_else(|e| {
                        panic!("workload {} failed to build: {e}", source.name())
                    });
                    Arc::new(ground_truth(programs))
                })
            })
            .collect();

        let jobs: Vec<(usize, usize)> = (0..self.sources.len())
            .flat_map(|s| (0..self.policies.len()).map(move |p| (s, p)))
            .collect();
        let workers = self
            .threads
            .unwrap_or_else(|| {
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, jobs.len().max(1));

        if workers <= 1 {
            return jobs
                .iter()
                .map(|&(s, p)| {
                    self.run_job(&self.sources[s], &self.policies[p], truths[s].as_ref())
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, PredictRow)>();
        let mut rows: Vec<Option<PredictRow>> = jobs.iter().map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let jobs = &jobs;
                let truths = &truths;
                scope.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, p)) = jobs.get(slot) else { break };
                    let row = self.run_job(&self.sources[s], &self.policies[p], truths[s].as_ref());
                    if tx.send((slot, row)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (slot, row) in rx {
                rows[slot] = Some(row);
            }
        });
        rows.into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect()
    }
}

fn fmt_opt(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) => format!("{v:.decimals$}"),
        None => "—".to_string(),
    }
}

/// Renders tournament rows as the committed markdown report.
///
/// Deterministic by construction: same rows (minus timings) → same bytes.
/// CI regenerates `reports/predictors.md` from the committed trace and
/// byte-compares it against this output.
pub fn render_markdown(rows: &[PredictRow]) -> String {
    let mut out = String::new();
    out.push_str("# Offline predictor tournament\n\n");
    out.push_str(
        "Generated by `ltp predict`. Each row replays one workload through the\n\
         logical coherence model (`ltp-workloads::replay`) under one predictor\n\
         spec and tallies the directory-verified outcomes: **accuracy** =\n\
         correct / (correct + premature), **coverage** = correct / (correct +\n\
         not-predicted) — the paper's Figure 6 metrics — and **mean lead** =\n\
         events between a self-invalidation and the request it served\n\
         (timeliness). Storage is summed across nodes at end of run.\n\n",
    );
    out.push_str(
        "| workload | predictor | nodes | ops | touches | fires | correct | \
         premature | not predicted | accuracy % | coverage % | mean lead | \
         live entries |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            row.workload,
            row.spec,
            row.nodes,
            row.ops,
            row.stats.touches,
            row.stats.fires,
            row.stats.correct,
            row.stats.premature,
            row.stats.not_predicted,
            fmt_opt(row.stats.accuracy_pct(), 2),
            fmt_opt(row.stats.coverage_pct(), 2),
            fmt_opt(row.stats.mean_lead(), 1),
            row.storage.live_entries,
        ));
    }
    out
}

/// Renders the committed report: the tournament table plus a provenance
/// footer stating which inputs produced it.
///
/// The footer carries [`PredictSpec::fingerprint`] — the campaign-store
/// hash of the tournament's workloads, geometry, and predictor specs — so
/// a regenerated `reports/predictors.md` is honest about its inputs:
/// tables whose fingerprints differ were produced from different
/// trace/spec sets and must not be compared row for row. (The same
/// honesty rule `BENCH_predict.json` applies to its throughput
/// acceptance: `pass` is reported from the measured numbers, never
/// assumed.)
pub fn render_report(spec: &PredictSpec, rows: &[PredictRow]) -> String {
    let mut out = render_markdown(rows);
    out.push_str(&format!(
        "\n**Provenance:** inputs fingerprint `{}` — the campaign-store hash\n\
         (the `ltp campaign` resume-key canonicalization, store format v{})\n\
         of this tournament's workloads, geometry, and predictor specs.\n\
         Compare tables only when their fingerprints match.\n",
        spec.fingerprint(),
        crate::campaign::STORE_FORMAT_VERSION,
    ));
    out
}

/// Renders tournament rows as a JSON array (includes per-row timings, so
/// not byte-stable across runs — for piping, not committing).
pub fn render_json(rows: &[PredictRow]) -> String {
    JsonValue::Array(rows.iter().map(PredictRow::to_json).collect()).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PolicyRegistry {
        PolicyRegistry::with_builtins()
    }

    #[test]
    fn rows_come_back_in_row_major_order() {
        let rows = PredictSpec::new()
            .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
            .policy_specs(&registry(), &["ltp", "last-pc"])
            .unwrap()
            .quick_geometry(4, 2)
            .execute();
        let labels: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r.workload.clone(), r.spec.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("em3d".into(), "ltp:bits=13,capacity=16".into()),
                ("em3d".into(), "last-pc:capacity=16".into()),
                ("tomcatv".into(), "ltp:bits=13,capacity=16".into()),
                ("tomcatv".into(), "last-pc:capacity=16".into()),
            ],
            "specs render canonically"
        );
    }

    #[test]
    fn parallel_matches_serial() {
        fn strip(mut rows: Vec<PredictRow>) -> Vec<PredictRow> {
            for r in &mut rows {
                r.elapsed_nanos = 0;
            }
            rows
        }
        let spec = PredictSpec::new()
            .benchmarks([Benchmark::Em3d, Benchmark::Moldyn, Benchmark::Ocean])
            .default_zoo(&registry())
            .unwrap()
            .quick_geometry(4, 2);
        let serial = strip(spec.clone().serial().execute());
        let parallel = strip(spec.threads(4).execute());
        assert_eq!(serial, parallel, "parallelism must not change results");
    }

    #[test]
    fn oracle_dominates_the_zoo() {
        let rows = PredictSpec::new()
            .benchmark(Benchmark::Em3d)
            .default_zoo(&registry())
            .unwrap()
            .quick_geometry(4, 3)
            .execute();
        let oracle = rows.iter().find(|r| r.spec == "oracle").unwrap();
        assert_eq!(oracle.stats.premature, 0);
        assert_eq!(oracle.stats.not_predicted, 0);
        for row in &rows {
            assert!(
                row.stats.correct <= oracle.stats.correct,
                "{}: nothing out-covers the oracle",
                row.spec
            );
        }
    }

    #[test]
    fn markdown_is_deterministic_and_complete() {
        let spec = PredictSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_specs(&registry(), &["ltp:bits=13", "oracle"])
            .unwrap()
            .quick_geometry(4, 2);
        let a = render_markdown(&spec.clone().execute());
        let b = render_markdown(&spec.execute());
        assert_eq!(a, b, "timings must not leak into the report");
        assert!(a.contains("| em3d | `ltp:bits=13,capacity=16` |"), "{a}");
        assert!(a.contains("| em3d | `oracle` |"));
        assert!(a.contains("100.00 | 100.00"), "oracle row is perfect:\n{a}");
    }

    #[test]
    fn json_rows_render() {
        let rows = PredictSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_spec(&registry(), "ltp")
            .unwrap()
            .quick_geometry(4, 2)
            .execute();
        let json = render_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.contains("\"predictor\":\"ltp:bits=13,capacity=16\""));
        assert!(json.contains("\"accuracy_pct\""));
    }
}
