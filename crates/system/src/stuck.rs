//! Structured diagnosis of runs that hit the cycle horizon.
//!
//! Some configurations livelock (the known seeded-kernel lock pathology at
//! wide pinned geometries — see ROADMAP): the machine keeps handling events
//! but some nodes never finish, and the run hits the 2×10⁹-cycle horizon.
//! [`ExperimentSpec::try_run`](crate::ExperimentSpec::try_run) turns that
//! into a [`StuckReport`] — per-node execution class (lock spin vs. barrier
//! wait vs. fill wait), the cycle at which each node last retired an
//! operation, and how many operations it retired — instead of a panic, so
//! campaign drivers can record the run as `stuck` and keep going.

use ltp_core::{JsonObject, JsonValue};
use ltp_dsm::DirectoryKind;
use ltp_workloads::WorkloadParams;

use crate::report::RunReport;

/// What a stuck node was doing when the horizon hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckClass {
    /// Spinning on a contended lock (test-and-test-and-set loop).
    LockSpin,
    /// Spinning on an ad-hoc flag that never advanced.
    FlagSpin,
    /// Waiting at a barrier for nodes that never arrived.
    BarrierWait,
    /// Waiting for a memory fill that never completed.
    MemWait,
    /// Between completing an access and its continuation — transient, so a
    /// node pinned here points at a lost wakeup.
    Completing,
    /// Ready to fetch the next op but never rescheduled — a lost `CpuStep`.
    Ready,
}

impl StuckClass {
    /// The stable lowercase identifier used in store documents.
    pub fn as_str(self) -> &'static str {
        match self {
            StuckClass::LockSpin => "lock-spin",
            StuckClass::FlagSpin => "flag-spin",
            StuckClass::BarrierWait => "barrier-wait",
            StuckClass::MemWait => "mem-wait",
            StuckClass::Completing => "completing",
            StuckClass::Ready => "ready",
        }
    }
}

impl std::fmt::Display for StuckClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One unfinished node's state at the horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckNode {
    /// The node's index.
    pub node: u16,
    /// What the node was doing.
    pub class: StuckClass,
    /// Human-readable detail (which lock/barrier/block).
    pub detail: String,
    /// Cycle at which the node last retired an operation (fetched fresh
    /// work from its program), `0` if it never did.
    pub last_progress_cycle: u64,
    /// Operations the node retired before stalling.
    pub ops_retired: u64,
}

impl StuckNode {
    fn to_json(&self) -> JsonValue {
        JsonObject::new()
            .field("node", u64::from(self.node))
            .field("class", self.class.as_str())
            .field("detail", self.detail.as_str())
            .field("last_progress_cycle", self.last_progress_cycle)
            .field("ops_retired", self.ops_retired)
            .build()
    }
}

/// The structured diagnosis of one horizon-reached run.
#[derive(Debug, Clone, PartialEq)]
pub struct StuckReport {
    /// The workload that stalled.
    pub benchmark: String,
    /// The short family name of the policy.
    pub policy: String,
    /// The canonical policy spec string.
    pub policy_spec: String,
    /// The directory sharer organization the run used.
    pub directory: DirectoryKind,
    /// The machine geometry the run used.
    pub workload: WorkloadParams,
    /// The horizon that fired, in cycles.
    pub horizon_cycles: u64,
    /// How many nodes *did* finish their programs.
    pub nodes_finished: u16,
    /// Every unfinished node, in node order.
    pub stuck_nodes: Vec<StuckNode>,
    /// Simulator events handled before the horizon.
    pub events_handled: u64,
}

impl StuckReport {
    /// Encodes the diagnosis as one compact JSON object (the campaign
    /// store's `"stuck"` document).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .field("benchmark", self.benchmark.as_str())
            .field("policy", self.policy.as_str())
            .field("policy_spec", self.policy_spec.as_str())
            .field("directory", self.directory.to_string())
            .field(
                "workload",
                JsonObject::new()
                    .field("nodes", self.workload.nodes)
                    .field("seed", self.workload.seed)
                    .field(
                        "iterations",
                        self.workload
                            .iterations
                            .map_or(JsonValue::Null, JsonValue::from),
                    )
                    .build(),
            )
            .field("horizon_cycles", self.horizon_cycles)
            .field("nodes_finished", u64::from(self.nodes_finished))
            .field(
                "stuck_nodes",
                JsonValue::Array(self.stuck_nodes.iter().map(StuckNode::to_json).collect()),
            )
            .field("events_handled", self.events_handled)
            .build()
            .render()
    }

    /// Renders the diagnosis for humans (panic messages, CLI stderr).
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} under {} stuck at the {}-cycle horizon ({} of {} nodes finished):",
            self.benchmark,
            self.policy_spec,
            self.horizon_cycles,
            self.nodes_finished,
            self.workload.nodes,
        );
        for n in &self.stuck_nodes {
            let _ = writeln!(
                out,
                "  node {}: {} ({}), last progress at cycle {}, {} ops retired",
                n.node, n.class, n.detail, n.last_progress_cycle, n.ops_retired
            );
        }
        out
    }
}

/// What [`ExperimentSpec::try_run`](crate::ExperimentSpec::try_run)
/// produced: a finished report, or a stuck diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run finished; here is its report.
    Completed(Box<RunReport>),
    /// The run hit the horizon with unfinished nodes.
    Stuck(Box<StuckReport>),
}

impl RunOutcome {
    /// The completed report, if the run finished.
    pub fn completed(self) -> Option<RunReport> {
        match self {
            RunOutcome::Completed(r) => Some(*r),
            RunOutcome::Stuck(_) => None,
        }
    }

    /// Whether the run stalled at the horizon.
    pub fn is_stuck(&self) -> bool {
        matches!(self, RunOutcome::Stuck(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_report_serializes_every_node() {
        let report = StuckReport {
            benchmark: "raytrace".to_string(),
            policy: "ltp".to_string(),
            policy_spec: "ltp:bits=13".to_string(),
            directory: DirectoryKind::Full,
            workload: WorkloadParams {
                nodes: 64,
                seed: 7,
                iterations: Some(6),
            },
            horizon_cycles: 2_000_000_000,
            nodes_finished: 62,
            stuck_nodes: vec![
                StuckNode {
                    node: 3,
                    class: StuckClass::LockSpin,
                    detail: "lock block 12".to_string(),
                    last_progress_cycle: 1_999_000_000,
                    ops_retired: 123,
                },
                StuckNode {
                    node: 9,
                    class: StuckClass::BarrierWait,
                    detail: "barrier 4".to_string(),
                    last_progress_cycle: 5_000,
                    ops_retired: 99,
                },
            ],
            events_handled: 42,
        };
        let json = report.to_json();
        for needle in [
            "\"benchmark\":\"raytrace\"",
            "\"horizon_cycles\":2000000000",
            "\"nodes_finished\":62",
            "\"class\":\"lock-spin\"",
            "\"class\":\"barrier-wait\"",
            "\"last_progress_cycle\":1999000000",
            "\"ops_retired\":123",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("node 3: lock-spin"), "{human}");
        assert!(human.contains("62 of 64 nodes finished"), "{human}");
    }

    #[test]
    fn class_identifiers_are_stable() {
        for (class, s) in [
            (StuckClass::LockSpin, "lock-spin"),
            (StuckClass::FlagSpin, "flag-spin"),
            (StuckClass::BarrierWait, "barrier-wait"),
            (StuckClass::MemWait, "mem-wait"),
            (StuckClass::Completing, "completing"),
            (StuckClass::Ready, "ready"),
        ] {
            assert_eq!(class.as_str(), s);
            assert_eq!(class.to_string(), s);
        }
    }
}
