//! Built-in probes: the core metrics collector, the per-node breakdown,
//! the self-invalidation lead-time histogram, and the live trace recorder.
//!
//! Every one of these is an ordinary [`Probe`] — nothing here has access
//! the `examples/custom_probe.rs` out-of-tree probe does not.

use std::collections::HashMap;
use std::collections::VecDeque;

use ltp_core::{JsonObject, JsonValue, StorageStats};
use ltp_sim::stats::{Histogram, MeanAccumulator};
use ltp_sim::Cycle;
use ltp_workloads::{TraceWriter, WorkloadParams};

use crate::metrics::Metrics;
use crate::probe::{MetricsSection, Probe, ProbeCtx, SimEvent};
use crate::report::metrics_json;

/// Per-node tallies of the accuracy/traffic counters.
#[derive(Debug, Default, Clone, Copy)]
struct NodeTally {
    predicted: u64,
    predicted_timely: u64,
    not_predicted: u64,
    mispredicted: u64,
    misses: u64,
    hits: u64,
    self_inv_sent: u64,
}

impl NodeTally {
    /// Classifies one verification verdict — the single copy of the
    /// predicted / predicted-timely / mispredicted mapping, shared by
    /// [`CoreMetricsProbe`] and [`PerNodeProbe`] so the per-node breakdown
    /// can never drift from the flat metrics it decomposes. (Each probe
    /// keeps its own flat event match: the optimizer collapses those to
    /// one arm per emission site, which the hot path depends on.)
    #[inline(always)]
    fn verdict(&mut self, outcome: ltp_core::VerifyOutcome, timely: bool) {
        match outcome {
            ltp_core::VerifyOutcome::Correct => {
                self.predicted += 1;
                if timely {
                    self.predicted_timely += 1;
                }
            }
            ltp_core::VerifyOutcome::Premature => self.mispredicted += 1,
        }
    }
}

/// The built-in probe reconstructing the flat [`Metrics`] struct from the
/// event stream — what every `RunReport`'s `metrics` block is produced by.
///
/// Aggregation deliberately mirrors the pre-probe simulator exactly: counts
/// accumulate per node / per home and merge in index order at the end, so
/// the resulting [`Metrics`] (floating-point means included) is
/// bit-identical to what the hard-coded counters used to produce.
#[derive(Debug)]
pub struct CoreMetricsProbe {
    exec_cycles: Cycle,
    messages: u64,
    nodes: Vec<NodeTally>,
    queueing: Vec<MeanAccumulator>,
    service: Vec<MeanAccumulator>,
    invalidations_sent: u64,
    extra_invalidations: u64,
    broadcast_overflows: u64,
    dir_evictions: u64,
    eviction_invalidations: u64,
    stale_ignored: u64,
    storage: StorageStats,
}

impl CoreMetricsProbe {
    /// An empty collector for an `nodes`-node machine.
    pub fn new(nodes: u16) -> Self {
        let n = usize::from(nodes);
        CoreMetricsProbe {
            exec_cycles: Cycle::ZERO,
            messages: 0,
            nodes: vec![NodeTally::default(); n],
            queueing: vec![MeanAccumulator::new(); n],
            service: vec![MeanAccumulator::new(); n],
            invalidations_sent: 0,
            extra_invalidations: 0,
            broadcast_overflows: 0,
            dir_evictions: 0,
            eviction_invalidations: 0,
            stale_ignored: 0,
            storage: StorageStats::default(),
        }
    }

    /// Folds one event into the tallies (shared by the typed fast path in
    /// `Machine` and the [`Probe`] impl).
    ///
    /// `#[inline(always)]` is load-bearing: the machine emits events with the
    /// variant known at each call site, so inlining collapses this match to
    /// the one live arm — that is what keeps the default probe stack's
    /// overhead in the noise (see the `probe_overhead` bench).
    #[inline(always)]
    pub fn observe(&mut self, ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::CacheHit { node, .. } => self.nodes[node.index()].hits += 1,
            SimEvent::CacheMiss { node, .. } => self.nodes[node.index()].misses += 1,
            SimEvent::Invalidated {
                node,
                had_copy: true,
                ..
            } => self.nodes[node.index()].not_predicted += 1,
            SimEvent::SelfInvalidation { node, .. } => {
                self.nodes[node.index()].self_inv_sent += 1;
            }
            SimEvent::PredictionVerified {
                node,
                outcome,
                timely,
                ..
            } => self.nodes[node.index()].verdict(outcome, timely),
            SimEvent::MessageDelivered { .. } => self.messages += 1,
            SimEvent::MessageServiced {
                home,
                queueing,
                service,
                ..
            } => {
                self.queueing[home.index()].record_cycles(queueing);
                self.service[home.index()].record_cycles(service);
            }
            SimEvent::InvalidationSent { .. } => self.invalidations_sent += 1,
            SimEvent::InvalidationAcked {
                had_copy: false, ..
            } => self.extra_invalidations += 1,
            SimEvent::BroadcastOverflow { .. } => self.broadcast_overflows += 1,
            SimEvent::DirEntryEvicted { invalidations, .. } => {
                self.dir_evictions += 1;
                self.eviction_invalidations += u64::from(invalidations);
            }
            SimEvent::StaleIgnored { .. } => self.stale_ignored += 1,
            SimEvent::NodeFinished { .. } => {
                self.exec_cycles = self.exec_cycles.max(ctx.now);
            }
            SimEvent::PolicyStorage { stats, .. } => {
                self.storage.blocks_tracked += stats.blocks_tracked;
                self.storage.live_entries += stats.live_entries;
                self.storage.signature_bits = self.storage.signature_bits.max(stats.signature_bits);
            }
            _ => {}
        }
    }

    /// Absorbs another collector's tallies (the sharded engine keeps one
    /// collector per shard, statically dispatched on each shard's hot path,
    /// and merges them at the end of the run).
    ///
    /// Bit-exactness: per-node and per-home slots are populated on exactly
    /// one shard (nodes and homes are partitioned), so slot-wise merging
    /// adds each non-zero contribution to zero — every counter, and every
    /// floating-point mean-accumulator sum, lands bit-identical to a
    /// single-collector run. Whole-machine counters (`messages`,
    /// `invalidations_sent`, …) are plain integer sums.
    pub(crate) fn merge(&mut self, other: &CoreMetricsProbe) {
        assert_eq!(self.nodes.len(), other.nodes.len(), "same machine size");
        self.exec_cycles = self.exec_cycles.max(other.exec_cycles);
        self.messages += other.messages;
        for (a, b) in self.nodes.iter_mut().zip(&other.nodes) {
            a.predicted += b.predicted;
            a.predicted_timely += b.predicted_timely;
            a.not_predicted += b.not_predicted;
            a.mispredicted += b.mispredicted;
            a.misses += b.misses;
            a.hits += b.hits;
            a.self_inv_sent += b.self_inv_sent;
        }
        for (a, b) in self.queueing.iter_mut().zip(&other.queueing) {
            a.merge(b);
        }
        for (a, b) in self.service.iter_mut().zip(&other.service) {
            a.merge(b);
        }
        self.invalidations_sent += other.invalidations_sent;
        self.extra_invalidations += other.extra_invalidations;
        self.broadcast_overflows += other.broadcast_overflows;
        self.dir_evictions += other.dir_evictions;
        self.eviction_invalidations += other.eviction_invalidations;
        self.stale_ignored += other.stale_ignored;
        self.storage.blocks_tracked += other.storage.blocks_tracked;
        self.storage.live_entries += other.storage.live_entries;
        self.storage.signature_bits = self
            .storage
            .signature_bits
            .max(other.storage.signature_bits);
    }

    /// Merges the tallies into the flat [`Metrics`] struct, in the same
    /// order the pre-probe simulator did.
    pub fn into_metrics(self) -> Metrics {
        let mut m = Metrics {
            exec_cycles: self.exec_cycles.as_u64(),
            messages: self.messages,
            ..Metrics::default()
        };
        for n in &self.nodes {
            m.predicted += n.predicted;
            m.predicted_timely += n.predicted_timely;
            m.not_predicted += n.not_predicted;
            m.mispredicted += n.mispredicted;
            m.misses += n.misses;
            m.hits += n.hits;
            m.self_invalidations_sent += n.self_inv_sent;
        }
        m.storage = self.storage;
        for q in &self.queueing {
            m.dir_queueing.merge(q);
        }
        for s in &self.service {
            m.dir_service.merge(s);
        }
        m.invalidations_sent = self.invalidations_sent;
        m.extra_invalidations = self.extra_invalidations;
        m.broadcast_overflows = self.broadcast_overflows;
        m.dir_evictions = self.dir_evictions;
        m.eviction_invalidations = self.eviction_invalidations;
        m.stale_ignored = self.stale_ignored;
        m
    }
}

impl Probe for CoreMetricsProbe {
    fn on_event(&mut self, ctx: &ProbeCtx, event: &SimEvent) {
        self.observe(ctx, event);
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        Some(MetricsSection::new(
            "core",
            metrics_json(&self.into_metrics()),
        ))
    }
}

/// Per-node accuracy and traffic breakdown (`per-node`): one record per
/// node, in node order — the distribution the flat metrics average away.
#[derive(Debug)]
pub struct PerNodeProbe {
    nodes: Vec<NodeTally>,
    ops: Vec<u64>,
    finished_at: Vec<u64>,
}

impl PerNodeProbe {
    /// An empty breakdown for an `nodes`-node machine.
    pub fn new(nodes: u16) -> Self {
        let n = usize::from(nodes);
        PerNodeProbe {
            nodes: vec![NodeTally::default(); n],
            ops: vec![0; n],
            finished_at: vec![0; n],
        }
    }
}

impl Probe for PerNodeProbe {
    fn on_event(&mut self, ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::OpRetired { node, .. } => self.ops[node.index()] += 1,
            SimEvent::CacheHit { node, .. } => self.nodes[node.index()].hits += 1,
            SimEvent::CacheMiss { node, .. } => self.nodes[node.index()].misses += 1,
            SimEvent::Invalidated {
                node,
                had_copy: true,
                ..
            } => self.nodes[node.index()].not_predicted += 1,
            SimEvent::SelfInvalidation { node, .. } => {
                self.nodes[node.index()].self_inv_sent += 1;
            }
            SimEvent::PredictionVerified {
                node,
                outcome,
                timely,
                ..
            } => self.nodes[node.index()].verdict(outcome, timely),
            SimEvent::NodeFinished { node } => {
                self.finished_at[node.index()] = ctx.now.as_u64();
            }
            _ => {}
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let rows: Vec<JsonValue> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                JsonObject::new()
                    .field("node", i as u64)
                    .field("ops", self.ops[i])
                    .field("finished_at", self.finished_at[i])
                    .field("misses", n.misses)
                    .field("hits", n.hits)
                    .field("predicted", n.predicted)
                    .field("predicted_timely", n.predicted_timely)
                    .field("not_predicted", n.not_predicted)
                    .field("mispredicted", n.mispredicted)
                    .field("self_invalidations_sent", n.self_inv_sent)
                    .build()
            })
            .collect();
        Some(MetricsSection::new("per-node", JsonValue::Array(rows)))
    }
}

/// Lead-time bucket bounds (cycles). The machine's remote round trip is
/// ≈416 cycles; premature predictions typically resolve within a few round
/// trips while correct ones can lead by a whole outer iteration, so the
/// buckets span 2⁶…2¹⁷ cycles.
const LEAD_BOUNDS: [u64; 12] = [
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
];

/// Lead-time histogram of self-invalidations (`hist:self-inv-lead`).
///
/// For every self-invalidation, the probe measures the cycles until its
/// verification verdict resolves — for a *correct* prediction that is how
/// early the block was relinquished before the conflicting access showed up
/// (the paper's timeliness, as a distribution rather than one percentage);
/// for a *premature* one it is how quickly the predictor's own node wanted
/// the block back. Verdicts are matched FIFO per `(node, block)`, the
/// directory's own resolution order; a self-invalidation the directory
/// ignores as stale (its copy was already taken by a crossing `Inv`) never
/// receives a verdict, so its pending entry is retired into `unresolved`
/// when the [`SimEvent::StaleIgnored`] event arrives — otherwise every
/// later verdict on that `(node, block)` would pop the wrong timestamp.
#[derive(Debug)]
pub struct SelfInvLeadProbe {
    pending: HashMap<(u16, u64), VecDeque<u64>>,
    correct_timely: Histogram,
    correct_late: Histogram,
    premature: Histogram,
    unresolved: u64,
}

impl SelfInvLeadProbe {
    /// An empty histogram probe.
    pub fn new() -> Self {
        SelfInvLeadProbe {
            pending: HashMap::new(),
            correct_timely: Histogram::with_bounds(&LEAD_BOUNDS),
            correct_late: Histogram::with_bounds(&LEAD_BOUNDS),
            premature: Histogram::with_bounds(&LEAD_BOUNDS),
            unresolved: 0,
        }
    }
}

impl Default for SelfInvLeadProbe {
    fn default() -> Self {
        SelfInvLeadProbe::new()
    }
}

/// Renders one histogram as `{bounds, counts, samples, mean, max}`.
fn histogram_json(h: &Histogram) -> JsonValue {
    JsonObject::new()
        .field(
            "bounds",
            JsonValue::Array(h.bounds().iter().map(|&b| b.into()).collect()),
        )
        .field(
            "counts",
            JsonValue::Array(h.bucket_counts().iter().map(|&c| c.into()).collect()),
        )
        .field("samples", h.samples())
        .field("mean", h.mean())
        .field("max", h.max())
        .build()
}

impl Probe for SelfInvLeadProbe {
    fn on_event(&mut self, ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::SelfInvalidation { node, block, .. } => {
                self.pending
                    .entry((node.index() as u16, block.index()))
                    .or_default()
                    .push_back(ctx.now.as_u64());
            }
            SimEvent::StaleIgnored {
                from,
                block,
                kind: ltp_dsm::MsgKind::SelfInvClean | ltp_dsm::MsgKind::SelfInvDirty { .. },
                ..
            } => {
                // This prediction will never be verified; retire its (oldest,
                // by FIFO) pending timestamp so later verdicts match their
                // own sends.
                let retired = self
                    .pending
                    .get_mut(&(from.index() as u16, block.index()))
                    .and_then(VecDeque::pop_front);
                if retired.is_some() {
                    self.unresolved += 1;
                }
            }
            SimEvent::PredictionVerified {
                node,
                block,
                outcome,
                timely,
            } => {
                let Some(sent) = self
                    .pending
                    .get_mut(&(node.index() as u16, block.index()))
                    .and_then(VecDeque::pop_front)
                else {
                    return; // verdict without a matching send: ignore
                };
                let lead = ctx.now.as_u64().saturating_sub(sent);
                match outcome {
                    ltp_core::VerifyOutcome::Correct if timely => {
                        self.correct_timely.record(lead);
                    }
                    ltp_core::VerifyOutcome::Correct => self.correct_late.record(lead),
                    ltp_core::VerifyOutcome::Premature => self.premature.record(lead),
                }
            }
            _ => {}
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let unresolved: u64 =
            self.unresolved + self.pending.values().map(|q| q.len() as u64).sum::<u64>();
        let data = JsonObject::new()
            .field("unit", "cycles")
            .field("correct_timely", histogram_json(&self.correct_timely))
            .field("correct_late", histogram_json(&self.correct_late))
            .field("premature", histogram_json(&self.premature))
            .field("unresolved", unresolved)
            .build();
        Some(MetricsSection::new("hist:self-inv-lead", data))
    }
}

/// The wire kinds in fixed report order — the row order of
/// [`MsgLatencyProbe`]'s section, chosen once so serial and sharded runs
/// render byte-identical JSON.
const MSG_CLASS_NAMES: [&str; 11] = [
    "GetS",
    "GetX",
    "Upgrade",
    "SelfInvClean",
    "SelfInvDirty",
    "Inv",
    "InvAck",
    "DataS",
    "DataX",
    "UpgradeAck",
    "VerifyCorrect",
];

/// Slot of a wire kind in [`MSG_CLASS_NAMES`].
fn msg_class(kind: ltp_dsm::MsgKind) -> usize {
    use ltp_dsm::MsgKind;
    match kind {
        MsgKind::GetS => 0,
        MsgKind::GetX => 1,
        MsgKind::Upgrade => 2,
        MsgKind::SelfInvClean => 3,
        MsgKind::SelfInvDirty { .. } => 4,
        MsgKind::Inv => 5,
        MsgKind::InvAck { .. } => 6,
        MsgKind::DataS { .. } => 7,
        MsgKind::DataX { .. } => 8,
        MsgKind::UpgradeAck { .. } => 9,
        MsgKind::VerifyCorrect { .. } => 10,
    }
}

/// Latency bucket bounds (cycles). Directory service occupancies are tens
/// of cycles; queueing under contention reaches thousands, so the buckets
/// span 2²…2¹³.
const MSG_LAT_BOUNDS: [u64; 12] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Message latency histogram (`hist:msg-latency`).
///
/// Per wire kind: how many messages were delivered
/// ([`SimEvent::MessageDelivered`]), and — for the directory-bound kinds a
/// home's protocol engine services ([`SimEvent::MessageServiced`]) — the
/// distributions of queueing delay, service occupancy, and their sum (the
/// message's total latency at the home). Classes that never appeared are
/// omitted from the section; rows render in the fixed `MSG_CLASS_NAMES`
/// order, so the section is byte-identical however the run was sharded
/// (events reach dynamic probes in canonical order either way).
#[derive(Debug)]
pub struct MsgLatencyProbe {
    delivered: [u64; MSG_CLASS_NAMES.len()],
    queueing: Vec<Histogram>,
    service: Vec<Histogram>,
    total: Vec<Histogram>,
}

impl MsgLatencyProbe {
    /// An empty histogram probe.
    pub fn new() -> Self {
        let hists = || {
            (0..MSG_CLASS_NAMES.len())
                .map(|_| Histogram::with_bounds(&MSG_LAT_BOUNDS))
                .collect()
        };
        MsgLatencyProbe {
            delivered: [0; MSG_CLASS_NAMES.len()],
            queueing: hists(),
            service: hists(),
            total: hists(),
        }
    }
}

impl Default for MsgLatencyProbe {
    fn default() -> Self {
        MsgLatencyProbe::new()
    }
}

impl Probe for MsgLatencyProbe {
    fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::MessageDelivered { msg } => {
                self.delivered[msg_class(msg.kind)] += 1;
            }
            SimEvent::MessageServiced {
                kind,
                queueing,
                service,
                ..
            } => {
                let c = msg_class(kind);
                self.queueing[c].record(queueing.as_u64());
                self.service[c].record(service.as_u64());
                self.total[c].record(queueing.as_u64() + service.as_u64());
            }
            _ => {}
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let rows: Vec<JsonValue> = MSG_CLASS_NAMES
            .iter()
            .enumerate()
            .filter(|&(c, _)| self.delivered[c] > 0 || self.total[c].samples() > 0)
            .map(|(c, name)| {
                JsonObject::new()
                    .field("class", *name)
                    .field("delivered", self.delivered[c])
                    .field("serviced", self.total[c].samples())
                    .field("queueing", histogram_json(&self.queueing[c]))
                    .field("service", histogram_json(&self.service[c]))
                    .field("total", histogram_json(&self.total[c]))
                    .build()
            })
            .collect();
        let data = JsonObject::new()
            .field("unit", "cycles")
            .field("classes", JsonValue::Array(rows))
            .build();
        Some(MetricsSection::new("hist:msg-latency", data))
    }
}

/// Tees the as-simulated op stream into a `.ltrace` file
/// (`record:<file>`) — ROADMAP's "record from live simulation".
///
/// Unlike `ltp record` (which drains programs without simulating), this
/// captures ops *as the machine issues them*, so workloads whose streams
/// could ever depend on simulation state are recorded faithfully. For
/// today's deterministic programs the two are bit-identical, which is what
/// the record-tee tests pin down.
#[derive(Debug)]
pub struct TraceRecorderProbe {
    path: String,
    writer: TraceWriter,
}

impl TraceRecorderProbe {
    /// A recorder writing to `path` at [`Probe::finish`] time.
    ///
    /// # Panics
    ///
    /// Panics if `workload.nodes < 2` (no trace file may record fewer).
    pub fn new(path: &str, workload_name: &str, workload: WorkloadParams) -> Self {
        TraceRecorderProbe {
            path: path.to_string(),
            writer: TraceWriter::new(workload_name, workload),
        }
    }
}

impl Probe for TraceRecorderProbe {
    fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
        if let SimEvent::OpRetired { node, op } = *event {
            self.writer.push(node.index() as u16, op);
        }
    }

    /// Writes the trace file.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a recording that silently
    /// vanishes is worse than a crashed run (the same contract as the
    /// JSON-lines report sink).
    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let path = self.path;
        let trace = self.writer.finish();
        trace
            .save(&path)
            .unwrap_or_else(|e| panic!("--record {path}: {e}"));
        None
    }
}

/// Per-block heat map (`heat:K`): the K hottest blocks by access count.
///
/// Folds the event stream into per-block tallies — accesses (cache hits +
/// misses), demand invalidations the directory sent for the block, and
/// sparse-directory entry evictions that victimized it — then keeps the
/// top K. Ties on access count break toward the lower block id, so the
/// section is a deterministic function of the run. The heat map is how a
/// sweep answers "*which* blocks carry the sharing" before reaching for
/// the per-node breakdown or a trace.
#[derive(Debug)]
pub struct HeatProbe {
    k: usize,
    blocks: HashMap<u64, BlockHeat>,
}

#[derive(Debug, Default, Clone, Copy)]
struct BlockHeat {
    accesses: u64,
    invalidations: u64,
    evictions: u64,
}

impl HeatProbe {
    /// A heat map keeping the `k` hottest blocks.
    pub fn new(k: usize) -> Self {
        HeatProbe {
            k,
            blocks: HashMap::new(),
        }
    }
}

impl Probe for HeatProbe {
    fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::CacheHit { block, .. } | SimEvent::CacheMiss { block, .. } => {
                self.blocks.entry(block.index()).or_default().accesses += 1;
            }
            SimEvent::InvalidationSent { block, .. } => {
                self.blocks.entry(block.index()).or_default().invalidations += 1;
            }
            SimEvent::DirEntryEvicted { block, .. } => {
                self.blocks.entry(block.index()).or_default().evictions += 1;
            }
            _ => {}
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let mut ranked: Vec<(u64, BlockHeat)> = self.blocks.into_iter().collect();
        ranked.sort_by(|(a_block, a), (b_block, b)| {
            b.accesses.cmp(&a.accesses).then(a_block.cmp(b_block))
        });
        let tracked = ranked.len() as u64;
        ranked.truncate(self.k);
        let top: Vec<JsonValue> = ranked
            .into_iter()
            .map(|(block, heat)| {
                JsonObject::new()
                    .field("block", block)
                    .field("accesses", heat.accesses)
                    .field("invalidations", heat.invalidations)
                    .field("evictions", heat.evictions)
                    .build()
            })
            .collect();
        let data = JsonObject::new()
            .field("k", self.k as u64)
            .field("blocks_tracked", tracked)
            .field("top", JsonValue::Array(top))
            .build();
        Some(MetricsSection::new("heat", data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_core::{BlockId, NodeId, VerifyOutcome};

    fn ctx(now: u64) -> ProbeCtx {
        ProbeCtx {
            now: Cycle::new(now),
            nodes: 2,
        }
    }

    #[test]
    fn lead_probe_matches_verdicts_fifo_per_block() {
        let mut p = Box::new(SelfInvLeadProbe::new());
        let n0 = NodeId::new(0);
        let b = BlockId::new(7);
        let send = |p: &mut SelfInvLeadProbe, at| {
            p.on_event(
                &ctx(at),
                &SimEvent::SelfInvalidation {
                    node: n0,
                    block: b,
                    dirty: false,
                },
            );
        };
        let verify = |p: &mut SelfInvLeadProbe, at, outcome, timely| {
            p.on_event(
                &ctx(at),
                &SimEvent::PredictionVerified {
                    node: n0,
                    block: b,
                    outcome,
                    timely,
                },
            );
        };
        send(&mut p, 100);
        send(&mut p, 700);
        verify(&mut p, 600, VerifyOutcome::Correct, true); // lead 500
        verify(&mut p, 760, VerifyOutcome::Premature, false); // lead 60
        send(&mut p, 1000); // never verified
        let section = p.finish().expect("section");
        assert_eq!(section.name, "hist:self-inv-lead");
        let json = section.data.render();
        assert!(json.contains("\"unresolved\":1"), "{json}");
        assert!(json.contains("\"unit\":\"cycles\""), "{json}");
        // 500 lands in the [256,512) bucket of correct_timely; 60 in the
        // first bucket of premature.
        assert!(json.contains("\"correct_timely\":{\"bounds\":"), "{json}");
    }

    #[test]
    fn lead_probe_retires_stale_self_invalidations() {
        // A self-invalidation the directory ignores as stale never gets a
        // verdict; its pending timestamp must be retired so the *next*
        // prediction's verdict is matched against its own send.
        let mut p = Box::new(SelfInvLeadProbe::new());
        let n0 = NodeId::new(0);
        let b = BlockId::new(7);
        p.on_event(
            &ctx(100),
            &SimEvent::SelfInvalidation {
                node: n0,
                block: b,
                dirty: false,
            },
        );
        p.on_event(
            &ctx(150),
            &SimEvent::StaleIgnored {
                home: NodeId::new(1),
                from: n0,
                block: b,
                kind: ltp_dsm::MsgKind::SelfInvClean,
            },
        );
        p.on_event(
            &ctx(1000),
            &SimEvent::SelfInvalidation {
                node: n0,
                block: b,
                dirty: false,
            },
        );
        p.on_event(
            &ctx(1060),
            &SimEvent::PredictionVerified {
                node: n0,
                block: b,
                outcome: VerifyOutcome::Correct,
                timely: true,
            },
        );
        let json = p.finish().expect("section").data.render();
        assert!(json.contains("\"unresolved\":1"), "{json}");
        // Lead 60 lands in the first bucket — not 960, which would mean the
        // verdict matched the stale send.
        assert!(
            json.contains("\"correct_timely\":{\"bounds\":[64,") && json.contains("\"counts\":[1,"),
            "{json}"
        );
    }

    #[test]
    fn msg_latency_probe_classifies_and_buckets() {
        let mut p = Box::new(MsgLatencyProbe::new());
        let msg = ltp_dsm::Message::new(
            NodeId::new(0),
            NodeId::new(1),
            BlockId::new(3),
            ltp_dsm::MsgKind::GetS,
        );
        p.on_event(&ctx(10), &SimEvent::MessageDelivered { msg });
        p.on_event(
            &ctx(40),
            &SimEvent::MessageServiced {
                home: NodeId::new(1),
                kind: ltp_dsm::MsgKind::GetS,
                queueing: Cycle::new(30),
                service: Cycle::new(14),
                data: true,
            },
        );
        let section = p.finish().expect("section");
        assert_eq!(section.name, "hist:msg-latency");
        let json = section.data.render();
        // Only the one class that appeared renders, with its delivered
        // count, service count, and the 30 + 14 total latency recorded.
        assert!(json.contains("\"class\":\"GetS\""), "{json}");
        assert!(!json.contains("\"class\":\"GetX\""), "{json}");
        assert!(json.contains("\"delivered\":1"), "{json}");
        assert!(json.contains("\"serviced\":1"), "{json}");
        assert!(json.contains("\"unit\":\"cycles\""), "{json}");
    }

    #[test]
    fn core_probe_counts_match_event_stream() {
        let mut p = CoreMetricsProbe::new(2);
        let n1 = NodeId::new(1);
        let b = BlockId::new(3);
        p.observe(
            &ctx(5),
            &SimEvent::CacheMiss {
                node: n1,
                block: b,
                pc: ltp_core::Pc::new(0x10),
                is_write: false,
            },
        );
        p.observe(
            &ctx(9),
            &SimEvent::Invalidated {
                node: n1,
                block: b,
                had_copy: true,
            },
        );
        p.observe(
            &ctx(9),
            &SimEvent::Invalidated {
                node: n1,
                block: b,
                had_copy: false,
            },
        );
        p.observe(&ctx(400), &SimEvent::NodeFinished { node: n1 });
        let m = p.into_metrics();
        assert_eq!(m.misses, 1);
        assert_eq!(m.not_predicted, 1, "copyless invalidations do not count");
        assert_eq!(m.exec_cycles, 400);
    }

    #[test]
    fn heat_probe_ranks_blocks_by_access_with_id_tiebreak() {
        let mut p = Box::new(HeatProbe::new(2));
        let n0 = NodeId::new(0);
        let touch = |p: &mut HeatProbe, block: u64, times: usize| {
            for _ in 0..times {
                p.on_event(
                    &ctx(1),
                    &SimEvent::CacheHit {
                        node: n0,
                        block: BlockId::new(block),
                        pc: ltp_core::Pc::new(0x10),
                        is_write: false,
                        exclusive: false,
                    },
                );
            }
        };
        // Block 9 is hottest; blocks 3 and 5 tie, so 3 wins the last slot.
        touch(&mut p, 5, 2);
        touch(&mut p, 9, 4);
        touch(&mut p, 3, 2);
        p.on_event(
            &ctx(2),
            &SimEvent::InvalidationSent {
                home: n0,
                to: NodeId::new(1),
                block: BlockId::new(9),
            },
        );
        p.on_event(
            &ctx(3),
            &SimEvent::DirEntryEvicted {
                home: n0,
                block: BlockId::new(9),
                invalidations: 1,
            },
        );
        let section = p.finish().expect("heat section");
        assert_eq!(section.name, "heat");
        assert_eq!(
            section.data.render(),
            "{\"k\":2,\"blocks_tracked\":3,\"top\":[\
             {\"block\":9,\"accesses\":4,\"invalidations\":1,\"evictions\":1},\
             {\"block\":3,\"accesses\":2,\"invalidations\":0,\"evictions\":0}]}"
        );
    }

    #[test]
    fn heat_specs_parse_and_reject_bad_arguments() {
        let registry = crate::probe::ProbeRegistry::with_builtins();
        let factory = registry.parse("heat:8").expect("heat:8 parses");
        assert_eq!(factory.spec(), "heat:8");
        assert!(registry.parse("heat").is_err(), "K is required");
        assert!(registry.parse("heat:0").is_err(), "K of 0 is useless");
        assert!(registry.parse("heat:lots").is_err(), "K must be a number");
    }
}
