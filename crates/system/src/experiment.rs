//! The experiment driver: benchmark × policy × predictor-geometry → report.
//!
//! [`ExperimentSpec`] is the single entry point the examples, integration
//! tests, and the figure/table benches all use. It assembles a [`Machine`]
//! with one policy instance per node, runs it to completion under a
//! deadlock-catching horizon, and returns a serializable [`RunReport`].

use ltp_core::{
    DsiPolicy, GlobalLtp, LastPc, NullPolicy, PerBlockLtp, PredictorConfig,
    SelfInvalidationPolicy, SignatureBits,
};
use ltp_dsm::SystemConfig;
use ltp_sim::{Cycle, Simulation, StopReason};
use ltp_workloads::{Benchmark, WorkloadParams};
use serde::{Deserialize, Serialize};

use crate::machine::Machine;
use crate::metrics::Metrics;

/// Which self-invalidation policy every node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No self-invalidation (the baseline DSM).
    Base,
    /// Dynamic Self-Invalidation (versioning + sync-boundary flush).
    Dsi,
    /// The single-PC strawman predictor.
    LastPc,
    /// The per-block (PAp-like) trace LTP with the given signature width.
    LtpPerBlock {
        /// Signature width in bits (the paper sweeps 30/13/11/6).
        bits: u8,
    },
    /// The global-table (PAg-like) trace LTP.
    LtpGlobal {
        /// Signature width in bits (30 needed for usable accuracy).
        bits: u8,
        /// Number of sets in the global table.
        sets: u32,
        /// Associativity of the global table.
        ways: u32,
    },
    /// Per-block trace LTP with the order-sensitive XOR-rotate encoder
    /// instead of the paper's truncated addition (the `ablation_encoding`
    /// variant).
    LtpXor {
        /// Signature width in bits.
        bits: u8,
    },
}

impl PolicyKind {
    /// The paper's base-case LTP: per-block tables, 13-bit signatures.
    pub const LTP: PolicyKind = PolicyKind::LtpPerBlock { bits: 13 };
    /// The paper's global-table configuration: 30-bit signatures in a
    /// small shared table — the whole point of the PAg organization is
    /// storage reduction, so the default is sized well below the aggregate
    /// per-block capacity and competes for entries.
    pub const LTP_GLOBAL: PolicyKind = PolicyKind::LtpGlobal {
        bits: 30,
        sets: 256,
        ways: 2,
    };

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Base => "base",
            PolicyKind::Dsi => "dsi",
            PolicyKind::LastPc => "last-pc",
            PolicyKind::LtpPerBlock { .. } => "ltp",
            PolicyKind::LtpGlobal { .. } => "ltp-global",
            PolicyKind::LtpXor { .. } => "ltp-xor",
        }
    }

    /// Instantiates one policy object for a node.
    ///
    /// # Panics
    ///
    /// Panics if a signature width is outside `1..=32`.
    pub fn build(self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        /// Per-block signature-table capacity (LRU beyond this). Sized above
        /// the paper's worst observed demand (dsmc: 7.8 signatures/block).
        const PER_BLOCK_CAPACITY: usize = 16;
        match self {
            PolicyKind::Base => Box::new(NullPolicy),
            PolicyKind::Dsi => Box::new(DsiPolicy::new()),
            PolicyKind::LastPc => Box::new(LastPc::with_config(PER_BLOCK_CAPACITY, config)),
            PolicyKind::LtpPerBlock { bits } => {
                let bits = SignatureBits::new(bits).expect("valid signature width");
                Box::new(PerBlockLtp::new(bits, PER_BLOCK_CAPACITY, config))
            }
            PolicyKind::LtpGlobal { bits, sets, ways } => {
                let bits = SignatureBits::new(bits).expect("valid signature width");
                Box::new(GlobalLtp::new(bits, sets as usize, ways as usize, config))
            }
            PolicyKind::LtpXor { bits } => {
                let bits = SignatureBits::new(bits).expect("valid signature width");
                Box::new(ltp_core::TracePredictor::with_parts(
                    ltp_core::XorRotate::new(bits, 5),
                    ltp_core::PerBlockTable::new(bits, PER_BLOCK_CAPACITY, config.initial_confidence),
                    config,
                    "ltp-xor",
                ))
            }
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Which benchmark to run.
    pub benchmark: Benchmark,
    /// Which self-invalidation policy to run on every node.
    pub policy: PolicyKind,
    /// Workload sizing parameters.
    pub workload: WorkloadParams,
    /// Predictor tuning knobs.
    pub predictor: PredictorConfig,
}

impl ExperimentSpec {
    /// An experiment on the paper's 32-node machine with default scaling.
    pub fn isca00(benchmark: Benchmark, policy: PolicyKind) -> Self {
        ExperimentSpec {
            benchmark,
            policy,
            workload: WorkloadParams::default(),
            predictor: PredictorConfig::default(),
        }
    }

    /// A small/fast variant for tests.
    pub fn quick(benchmark: Benchmark, policy: PolicyKind, nodes: u16, iters: u32) -> Self {
        ExperimentSpec {
            benchmark,
            policy,
            workload: WorkloadParams::quick(nodes, iters),
            predictor: PredictorConfig::default(),
        }
    }

    /// Runs the experiment to completion.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (horizon reached with unfinished
    /// processors) — by construction this indicates a protocol bug, and the
    /// panic message carries the stuck-node diagnosis.
    pub fn run(&self) -> RunReport {
        let config = SystemConfig::builder()
            .nodes(self.workload.nodes)
            .build()
            .expect("valid node count");
        let n = self.workload.nodes;
        let policies = (0..n).map(|_| self.policy.build(self.predictor)).collect();
        let programs = self.benchmark.programs(&self.workload);
        let machine = Machine::new(config, policies, programs);

        let mut sim = Simulation::new(machine).with_horizon(Cycle::new(HORIZON_CYCLES));
        {
            let (world, queue) = sim.world_and_queue_mut();
            world.prime(queue);
        }
        let summary = sim.run();
        assert_ne!(
            summary.stop,
            StopReason::HorizonReached,
            "{} under {:?} deadlocked; stuck nodes:\n{}",
            self.benchmark,
            self.policy,
            sim.world().stuck_report()
        );
        let machine = sim.into_world();
        assert!(machine.all_finished(), "drained but processors unfinished");
        RunReport {
            benchmark: self.benchmark,
            policy: self.policy,
            metrics: machine.into_metrics(),
            events_handled: summary.events_handled,
        }
    }
}

/// Simulation horizon: generous enough for every scaled workload, small
/// enough to fail fast on livelock.
const HORIZON_CYCLES: u64 = 2_000_000_000;

/// The outcome of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The benchmark that ran.
    pub benchmark: Benchmark,
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Simulator events handled (activity indicator).
    pub events_handled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_em3d_runs_clean() {
        let report = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::Base, 4, 3).run();
        assert!(report.metrics.exec_cycles > 0);
        assert!(report.metrics.misses > 0);
        assert_eq!(report.metrics.predicted, 0, "base never self-invalidates");
        assert_eq!(report.metrics.mispredicted, 0);
        assert!(report.metrics.not_predicted > 0, "sharing causes invalidations");
    }

    #[test]
    fn ltp_em3d_predicts_most_invalidations() {
        let report = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::LTP, 4, 12).run();
        let m = &report.metrics;
        assert!(
            m.predicted_pct() > 60.0,
            "em3d is the best case; got {:.1}% ({} of {})",
            m.predicted_pct(),
            m.predicted,
            m.invalidation_events()
        );
        assert!(m.mispredicted_pct() < 10.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let spec = ExperimentSpec::quick(Benchmark::Raytrace, PolicyKind::LTP, 4, 3);
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.metrics.exec_cycles, b.metrics.exec_cycles);
        assert_eq!(a.metrics.predicted, b.metrics.predicted);
        assert_eq!(a.events_handled, b.events_handled);
    }

    #[test]
    fn policy_kinds_build() {
        for kind in [
            PolicyKind::Base,
            PolicyKind::Dsi,
            PolicyKind::LastPc,
            PolicyKind::LTP,
            PolicyKind::LTP_GLOBAL,
        ] {
            let p = kind.build(PredictorConfig::default());
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn report_serializes() {
        let report = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::Base, 2, 1).run();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("em3d"));
    }
}
