//! The experiment driver: workload × policy × machine geometry → report.
//!
//! [`ExperimentSpec`] describes one run: a [`WorkloadSource`] (a synthetic
//! [`ltp_workloads::Benchmark`], a recorded [`Trace`], or a
//! [`StreamingTrace`] decoded incrementally from its file), a shared
//! [`PolicyFactory`] (resolved from a spec string through a
//! [`PolicyRegistry`] or constructed directly), workload sizing, and
//! predictor tuning. Construct one through [`ExperimentSpec::builder`] (or
//! the [`ExperimentSpec::isca00`] / [`ExperimentSpec::quick`] /
//! [`ExperimentSpec::replay`] / [`ExperimentSpec::replay_streaming`]
//! shorthands), then [`ExperimentSpec::run`] it — or hand many design
//! points to [`crate::SweepSpec`] to execute in parallel.

use std::sync::Arc;

use ltp_core::{PolicyFactory, PolicyRegistry, PolicySpecError, PredictorConfig};
use ltp_dsm::{DirectoryKind, SystemConfig};
use ltp_sim::{Cycle, StopReason};
use ltp_workloads::{RunEstimate, StreamingTrace, Trace, WorkloadParams, WorkloadSource};

use crate::machine::Machine;
use crate::probe::{FnProbeFactory, Probe, ProbeFactory, ProbeRegistry, ProbeSpecError, RunInfo};
use crate::report::RunReport;
use crate::stuck::{RunOutcome, StuckReport};

/// A complete experiment description.
///
/// # Examples
///
/// ```
/// use ltp_system::ExperimentSpec;
/// use ltp_workloads::Benchmark;
///
/// let report = ExperimentSpec::builder(Benchmark::Em3d)
///     .policy_spec("ltp:bits=13")
///     .unwrap()
///     .nodes(4)
///     .iterations(8)
///     .build()
///     .run();
/// assert!(report.metrics.predicted > 0, "LTP learns em3d's one-touch traces");
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Which workload to run: a synthetic benchmark or a recorded trace.
    pub source: WorkloadSource,
    /// The factory instantiating one policy per node.
    pub policy: Arc<dyn PolicyFactory>,
    /// Workload sizing parameters (machine geometry). Trace sources pin
    /// their recorded geometry: whatever is requested here, the run uses
    /// [`WorkloadSource::effective_params`].
    pub workload: WorkloadParams,
    /// Predictor tuning knobs.
    pub predictor: PredictorConfig,
    /// The directory sharer organization (full map, coarse vector, or
    /// limited pointers).
    pub directory: DirectoryKind,
    /// Extra observers: one probe is built per factory for the run, on top
    /// of the always-attached core-metrics probe.
    pub probes: Vec<Arc<dyn ProbeFactory>>,
    /// How many worker shards execute the machine (default 1 = serial;
    /// clamped to the node count). Purely a wall-clock knob: the report is
    /// bit-identical for every value.
    pub shards: usize,
    /// Combining-tree barrier fan-in (default 4, minimum 2). Purely a
    /// bookkeeping-cost knob: releases land on the window grid for every
    /// value, so the report is bit-identical across fan-ins.
    pub barrier_fanin: u16,
}

impl ExperimentSpec {
    /// Starts a builder for any workload source — a
    /// [`ltp_workloads::Benchmark`], a [`Trace`], or an explicit
    /// [`WorkloadSource`] (policy defaults to `base`).
    pub fn builder(source: impl Into<WorkloadSource>) -> ExperimentBuilder {
        let source = source.into();
        let workload = source.effective_params(WorkloadParams::default());
        ExperimentBuilder {
            spec: ExperimentSpec {
                source,
                policy: Arc::new(ltp_core::registry::BaseFactory),
                workload,
                predictor: PredictorConfig::default(),
                directory: DirectoryKind::Full,
                probes: Vec::new(),
                shards: 1,
                barrier_fanin: 4,
            },
        }
    }

    /// Starts a builder replaying a recorded trace at its recorded
    /// geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    ///
    /// use ltp_system::ExperimentSpec;
    /// use ltp_workloads::{Benchmark, Trace, WorkloadParams};
    ///
    /// let params = WorkloadParams::quick(4, 3);
    /// let trace = Arc::new(Trace::record(Benchmark::Em3d, &params));
    ///
    /// let direct = ExperimentSpec::builder(Benchmark::Em3d)
    ///     .policy_spec("ltp").unwrap().workload(params).build().run();
    /// let replayed = ExperimentSpec::replay(Arc::clone(&trace))
    ///     .policy_spec("ltp").unwrap().build().run();
    /// assert_eq!(replayed, direct, "replay is bit-identical");
    /// ```
    pub fn replay(trace: Arc<Trace>) -> ExperimentBuilder {
        ExperimentSpec::builder(trace)
    }

    /// Starts a builder replaying a trace *incrementally from its file*
    /// (bounded per-node decode window, no full-trace materialization) at
    /// its recorded geometry.
    ///
    /// Streamed replay is bit-identical to buffered replay of the same
    /// file; use it when the trace is too large to hold in memory.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    ///
    /// use ltp_system::ExperimentSpec;
    /// use ltp_workloads::{Benchmark, StreamingTrace, Trace, WorkloadParams};
    ///
    /// let params = WorkloadParams::quick(4, 3);
    /// let trace = Arc::new(Trace::record(Benchmark::Em3d, &params));
    /// let path = std::env::temp_dir()
    ///     .join(format!("ltp-doc-replay-{}.ltrace", std::process::id()));
    /// trace.save(&path).unwrap();
    ///
    /// let buffered = ExperimentSpec::replay(Arc::clone(&trace))
    ///     .policy_spec("ltp").unwrap().build().run();
    /// let streamed = ExperimentSpec::replay_streaming(
    ///     Arc::new(StreamingTrace::open(&path).unwrap()))
    ///     .policy_spec("ltp").unwrap().build().run();
    /// assert_eq!(streamed, buffered, "streaming replay is bit-identical");
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn replay_streaming(trace: Arc<StreamingTrace>) -> ExperimentBuilder {
        ExperimentSpec::builder(trace)
    }

    /// An experiment on the paper's 32-node machine with default scaling.
    pub fn isca00(source: impl Into<WorkloadSource>, policy: Arc<dyn PolicyFactory>) -> Self {
        ExperimentSpec::builder(source).policy(policy).build()
    }

    /// A small/fast variant for tests.
    pub fn quick(
        source: impl Into<WorkloadSource>,
        policy: Arc<dyn PolicyFactory>,
        nodes: u16,
        iters: u32,
    ) -> Self {
        ExperimentSpec::builder(source)
            .policy(policy)
            .nodes(nodes)
            .iterations(iters)
            .build()
    }

    /// Runs the experiment to completion.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (horizon reached with unfinished
    /// processors) — by construction this indicates a protocol bug, and the
    /// panic message carries the stuck-node diagnosis. Campaign drivers
    /// that must survive stuck runs use [`ExperimentSpec::try_run`].
    pub fn run(&self) -> RunReport {
        match self.try_run() {
            RunOutcome::Completed(report) => *report,
            RunOutcome::Stuck(stuck) => panic!("{}", stuck.render_human()),
        }
    }

    /// Runs the experiment, converting a horizon overrun into a structured
    /// [`StuckReport`] instead of panicking.
    ///
    /// This is the campaign driver's entry point: the known seeded-kernel
    /// lock livelock at wide pinned geometries (see ROADMAP) would
    /// otherwise kill a thousands-of-runs campaign; here it becomes a
    /// per-node diagnosis recorded in the store.
    pub fn try_run(&self) -> RunOutcome {
        let workload = self.source.effective_params(self.workload);
        let config = SystemConfig::builder()
            .nodes(workload.nodes)
            .directory(self.directory)
            .barrier_fanin(self.barrier_fanin)
            .build()
            .expect("valid node count and directory organization");
        let n = workload.nodes;
        let policies = (0..n).map(|_| self.policy.build(self.predictor)).collect();
        let programs = self
            .source
            .programs(&workload)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut machine = Machine::with_shards(config, policies, programs, self.shards);
        machine.attach_core_metrics();
        let info = RunInfo {
            workload_name: self.source.name().to_string(),
            workload,
            directory: self.directory,
        };
        for factory in &self.probes {
            machine.attach_probe(factory.build(&info));
        }

        let summary = machine.run(Cycle::new(HORIZON_CYCLES));
        if summary.stop == StopReason::HorizonReached && !machine.all_finished() {
            let stuck_nodes = machine.stuck_nodes();
            return RunOutcome::Stuck(Box::new(StuckReport {
                benchmark: self.source.name().to_string(),
                policy: self.policy.name().to_string(),
                policy_spec: self.policy.spec(),
                directory: self.directory,
                workload,
                horizon_cycles: HORIZON_CYCLES,
                nodes_finished: workload.nodes - stuck_nodes.len() as u16,
                stuck_nodes,
                events_handled: summary.events_handled,
            }));
        }
        assert!(machine.all_finished(), "drained but processors unfinished");
        let (metrics, sections) = machine.finish();
        RunOutcome::Completed(Box::new(RunReport {
            benchmark: self.source.name().to_string(),
            policy: self.policy.name().to_string(),
            policy_spec: self.policy.spec(),
            directory: self.directory,
            workload,
            metrics: metrics.expect("core metrics probe attached"),
            sections,
            events_handled: summary.events_handled,
        }))
    }

    /// Up-front run-length estimate at the effective geometry, when the
    /// workload's total op count is knowable cheaply (see
    /// [`WorkloadSource::estimated_ops`]). Drives the sweep scheduler.
    pub fn estimated_ops(&self) -> Option<RunEstimate> {
        self.source
            .estimated_ops(&self.source.effective_params(self.workload))
    }
}

/// Builder for [`ExperimentSpec`] (see [`ExperimentSpec::builder`]).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    spec: ExperimentSpec,
}

impl ExperimentBuilder {
    /// Sets the policy factory every node will build from.
    pub fn policy(mut self, policy: Arc<dyn PolicyFactory>) -> Self {
        self.spec.policy = policy;
        self
    }

    /// Resolves `spec` through the built-in [`PolicyRegistry`].
    ///
    /// For custom policies, resolve through your own registry and pass the
    /// factory to [`Self::policy`], or use [`Self::policy_spec_in`].
    ///
    /// # Errors
    ///
    /// Returns the [`PolicySpecError`] from the registry.
    pub fn policy_spec(self, spec: &str) -> Result<Self, PolicySpecError> {
        self.policy_spec_in(&PolicyRegistry::with_builtins(), spec)
    }

    /// Resolves `spec` through the given registry.
    ///
    /// # Errors
    ///
    /// Returns the [`PolicySpecError`] from the registry.
    pub fn policy_spec_in(
        self,
        registry: &PolicyRegistry,
        spec: &str,
    ) -> Result<Self, PolicySpecError> {
        let factory = registry.parse(spec)?;
        Ok(self.policy(factory))
    }

    /// Sets the machine size.
    pub fn nodes(mut self, nodes: u16) -> Self {
        self.spec.workload.nodes = nodes;
        self
    }

    /// Overrides the benchmark's default iteration count.
    pub fn iterations(mut self, iters: u32) -> Self {
        self.spec.workload.iterations = Some(iters);
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.workload.seed = seed;
        self
    }

    /// Replaces the whole workload-parameter block.
    pub fn workload(mut self, workload: WorkloadParams) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Sets the predictor tuning knobs.
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.spec.predictor = predictor;
        self
    }

    /// Sets the combining-tree barrier fan-in (default 4; minimum 2).
    pub fn barrier_fanin(mut self, fanin: u16) -> Self {
        self.spec.barrier_fanin = fanin;
        self
    }

    /// Sets the directory sharer organization (default:
    /// [`DirectoryKind::Full`], the paper's exact full map).
    pub fn directory(mut self, directory: DirectoryKind) -> Self {
        self.spec.directory = directory;
        self
    }

    /// Sets the worker shard count (default 1 = serial). Sharding only
    /// changes wall-clock time — the report is bit-identical for every
    /// value, so it is not part of the design point.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Attaches one probe factory: the run builds a fresh probe from it and
    /// its [`crate::MetricsSection`] (if any) lands in
    /// [`RunReport::sections`]. The core-metrics probe is always attached;
    /// this adds observers on top.
    pub fn probe(mut self, probe: Arc<dyn ProbeFactory>) -> Self {
        self.spec.probes.push(probe);
        self
    }

    /// Attaches a probe resolved from a spec string through the built-in
    /// [`ProbeRegistry`] (`"per-node"`, `"hist:self-inv-lead"`,
    /// `"record:out.ltrace"`).
    ///
    /// For custom probes, resolve through your own registry and pass the
    /// factory to [`Self::probe`], or use [`Self::probe_spec_in`].
    ///
    /// # Errors
    ///
    /// Returns the [`ProbeSpecError`] from the registry.
    pub fn probe_spec(self, spec: &str) -> Result<Self, ProbeSpecError> {
        self.probe_spec_in(&ProbeRegistry::with_builtins(), spec)
    }

    /// Attaches a probe resolved from `spec` through the given registry.
    ///
    /// # Errors
    ///
    /// Returns the [`ProbeSpecError`] from the registry.
    pub fn probe_spec_in(
        self,
        registry: &ProbeRegistry,
        spec: &str,
    ) -> Result<Self, ProbeSpecError> {
        let factory = registry.parse(spec)?;
        Ok(self.probe(factory))
    }

    /// Attaches an ad-hoc probe built by a closure — the one-experiment
    /// shortcut past defining a [`ProbeFactory`] type (see the
    /// [`crate::probe`] module example).
    pub fn probe_fn(
        self,
        name: &str,
        make: impl Fn() -> Box<dyn Probe> + Send + Sync + 'static,
    ) -> Self {
        self.probe(Arc::new(FnProbeFactory::new(name, make)))
    }

    /// Finishes the builder.
    pub fn build(self) -> ExperimentSpec {
        self.spec
    }
}

/// Simulation horizon: generous enough for every scaled workload, small
/// enough to fail fast on livelock.
const HORIZON_CYCLES: u64 = 2_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_workloads::Benchmark;

    fn quick(benchmark: Benchmark, spec: &str, nodes: u16, iters: u32) -> RunReport {
        ExperimentSpec::builder(benchmark)
            .policy_spec(spec)
            .unwrap()
            .nodes(nodes)
            .iterations(iters)
            .build()
            .run()
    }

    #[test]
    fn try_run_completes_on_a_healthy_config() {
        let outcome = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("ltp")
            .unwrap()
            .nodes(4)
            .iterations(3)
            .build()
            .try_run();
        assert!(!outcome.is_stuck());
        let report = outcome.completed().expect("completed");
        assert!(report.metrics.exec_cycles > 0);
    }

    #[test]
    fn base_em3d_runs_clean() {
        let report = quick(Benchmark::Em3d, "base", 4, 3);
        assert!(report.metrics.exec_cycles > 0);
        assert!(report.metrics.misses > 0);
        assert_eq!(report.metrics.predicted, 0, "base never self-invalidates");
        assert_eq!(report.metrics.mispredicted, 0);
        assert!(
            report.metrics.not_predicted > 0,
            "sharing causes invalidations"
        );
    }

    #[test]
    fn ltp_em3d_predicts_most_invalidations() {
        let report = quick(Benchmark::Em3d, "ltp", 4, 12);
        let m = &report.metrics;
        assert!(
            m.predicted_pct() > 60.0,
            "em3d is the best case; got {:.1}% ({} of {})",
            m.predicted_pct(),
            m.predicted,
            m.invalidation_events()
        );
        assert!(m.mispredicted_pct() < 10.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let spec = ExperimentSpec::builder(Benchmark::Raytrace)
            .policy_spec("ltp")
            .unwrap()
            .nodes(4)
            .iterations(3)
            .build();
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a, b, "same spec, same report");
    }

    #[test]
    fn trace_replay_reproduces_the_synthetic_run() {
        let params = WorkloadParams::quick(4, 3);
        let trace = Arc::new(Trace::record(Benchmark::Raytrace, &params));
        let direct = ExperimentSpec::builder(Benchmark::Raytrace)
            .policy_spec("ltp")
            .unwrap()
            .workload(params)
            .build()
            .run();
        let replayed = ExperimentSpec::replay(trace)
            .policy_spec("ltp")
            .unwrap()
            .build()
            .run();
        assert_eq!(replayed, direct);
    }

    #[test]
    fn trace_geometry_overrides_builder_geometry() {
        let params = WorkloadParams::quick(4, 2);
        let trace = Arc::new(Trace::record(Benchmark::Em3d, &params));
        // A (mistaken) .nodes() override on a trace run is ignored: the
        // recorded geometry wins.
        let report = ExperimentSpec::replay(trace)
            .policy_spec("base")
            .unwrap()
            .nodes(16)
            .build()
            .run();
        assert_eq!(report.workload, params);
    }

    #[test]
    fn report_names_the_policy() {
        let report = quick(Benchmark::Em3d, "ltp:bits=11", 2, 1);
        assert_eq!(report.policy, "ltp");
        assert_eq!(report.policy_spec, "ltp:bits=11,capacity=16");
    }

    #[test]
    fn report_records_the_directory_kind() {
        let report = quick(Benchmark::Em3d, "base", 4, 1);
        assert_eq!(report.directory, DirectoryKind::Full, "default is full");
        let report = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("base")
            .unwrap()
            .nodes(4)
            .iterations(1)
            .directory(DirectoryKind::LimitedPtr { pointers: 2 })
            .build()
            .run();
        assert_eq!(report.directory, DirectoryKind::LimitedPtr { pointers: 2 });
    }

    #[test]
    fn coarse_directory_over_invalidates_but_completes() {
        let full = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("base")
            .unwrap()
            .nodes(8)
            .iterations(4)
            .build()
            .run();
        let coarse = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("base")
            .unwrap()
            .nodes(8)
            .iterations(4)
            .directory(DirectoryKind::Coarse { cluster: 4 })
            .build()
            .run();
        assert_eq!(full.metrics.extra_invalidations, 0, "full map is exact");
        assert!(
            coarse.metrics.invalidations_sent >= full.metrics.invalidations_sent,
            "coarse clusters can only widen invalidation rounds"
        );
    }

    #[test]
    fn sharded_experiment_report_is_bit_identical() {
        let base = ExperimentSpec::builder(Benchmark::Raytrace)
            .policy_spec("ltp")
            .unwrap()
            .nodes(8)
            .iterations(3)
            .build();
        let serial = base.run();
        for shards in [2usize, 4, 8] {
            let mut spec = base.clone();
            spec.shards = shards;
            let sharded = spec.run();
            assert_eq!(
                sharded.to_json(),
                serial.to_json(),
                "{shards}-shard report bytes diverged from serial"
            );
        }
    }

    #[test]
    fn report_serializes() {
        let report = quick(Benchmark::Em3d, "base", 2, 1);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\":\"em3d\""), "{json}");
        assert!(json.contains("\"policy\":\"base\""), "{json}");
    }
}
