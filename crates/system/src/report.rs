//! Run reports and the streaming [`ReportSink`] API.
//!
//! Every experiment produces a [`RunReport`]; sweeps stream reports through
//! a [`ReportSink`] *in run order* (the cross-product order of the sweep),
//! so a sink observes identical sequences whether the sweep executed
//! serially or in parallel. Two collectors ship in-tree:
//!
//! * [`MemorySink`] — keeps every report in memory (aggregation, tests);
//! * [`JsonLinesSink`] — writes one JSON object per line to any
//!   [`std::io::Write`] (files, pipes, stdout), the interchange format the
//!   CLI and the benchmark baselines use.
//!
//! The JSON encoder is hand-rolled (this repository carries no external
//! dependencies); [`RunReport::to_json`] is the single source of the
//! document shape.

use std::fmt::Write as _;
use std::io;

use ltp_dsm::DirectoryKind;
use ltp_workloads::WorkloadParams;

use crate::metrics::Metrics;

/// The outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The workload that ran: a benchmark name, or the name recorded in a
    /// replayed trace's header.
    pub benchmark: String,
    /// The short family name of the policy ("base", "dsi", "ltp", …).
    pub policy: String,
    /// The canonical policy spec string (parameters included).
    pub policy_spec: String,
    /// The directory sharer organization the run used.
    pub directory: DirectoryKind,
    /// The machine geometry the run used.
    pub workload: WorkloadParams,
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Simulator events handled (activity indicator).
    pub events_handled: u64,
}

impl RunReport {
    /// Encodes the report as one compact JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_tagged(None)
    }

    /// Encodes the report with an optional leading `"run":seq` field (the
    /// sweep's run index), as written by [`JsonLinesSink`].
    pub fn to_json_tagged(&self, seq: Option<usize>) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        if let Some(seq) = seq {
            let _ = write!(s, "\"run\":{seq},");
        }
        let _ = write!(
            s,
            "\"benchmark\":\"{}\",\"policy\":\"{}\",\"policy_spec\":\"{}\",\"directory\":\"{}\",",
            json_escape(&self.benchmark),
            json_escape(&self.policy),
            json_escape(&self.policy_spec),
            self.directory,
        );
        let _ = write!(
            s,
            "\"workload\":{{\"nodes\":{},\"seed\":{},\"iterations\":{}}},",
            self.workload.nodes,
            self.workload.seed,
            self.workload
                .iterations
                .map_or_else(|| "null".to_string(), |i| i.to_string())
        );
        let _ = write!(s, "\"metrics\":{},", metrics_json(&self.metrics));
        let _ = write!(s, "\"events_handled\":{}", self.events_handled);
        s.push('}');
        s
    }
}

/// Encodes [`Metrics`] as a JSON object.
fn metrics_json(m: &Metrics) -> String {
    let mut s = String::with_capacity(384);
    s.push('{');
    let _ = write!(
        s,
        "\"predicted\":{},\"predicted_timely\":{},\"not_predicted\":{},\"mispredicted\":{},",
        m.predicted, m.predicted_timely, m.not_predicted, m.mispredicted
    );
    let _ = write!(
        s,
        "\"exec_cycles\":{},\"misses\":{},\"hits\":{},\"self_invalidations_sent\":{},\
         \"invalidations_sent\":{},\"extra_invalidations\":{},\"broadcast_overflows\":{},\
         \"messages\":{},\"stale_ignored\":{},",
        m.exec_cycles,
        m.misses,
        m.hits,
        m.self_invalidations_sent,
        m.invalidations_sent,
        m.extra_invalidations,
        m.broadcast_overflows,
        m.messages,
        m.stale_ignored
    );
    let _ = write!(
        s,
        "\"dir_queueing\":{{\"mean\":{},\"samples\":{}}},",
        json_f64(m.dir_queueing.mean_or_zero()),
        m.dir_queueing.samples()
    );
    let _ = write!(
        s,
        "\"dir_service\":{{\"mean\":{},\"samples\":{}}},",
        json_f64(m.dir_service.mean_or_zero()),
        m.dir_service.samples()
    );
    let _ = write!(
        s,
        "\"storage\":{{\"blocks_tracked\":{},\"live_entries\":{},\"signature_bits\":{}}}",
        m.storage.blocks_tracked, m.storage.live_entries, m.storage.signature_bits
    );
    s.push('}');
    s
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Receives per-run reports as a sweep executes.
///
/// `seq` is the run's index in the sweep's cross-product order; sinks are
/// always called with strictly increasing `seq` (0, 1, 2, …) even when runs
/// complete out of order on worker threads.
pub trait ReportSink {
    /// Observes the report of run `seq`.
    fn record(&mut self, seq: usize, report: &RunReport);

    /// Called once after the last report (flush point).
    fn finish(&mut self) {}
}

/// A sink that discards every report.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ReportSink for NullSink {
    fn record(&mut self, _seq: usize, _report: &RunReport) {}
}

/// Collects every report in memory, in run order.
#[derive(Debug, Default)]
pub struct MemorySink {
    reports: Vec<RunReport>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The reports collected so far, in run order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Consumes the sink, returning the collected reports.
    pub fn into_reports(self) -> Vec<RunReport> {
        self.reports
    }
}

impl ReportSink for MemorySink {
    fn record(&mut self, seq: usize, report: &RunReport) {
        debug_assert_eq!(seq, self.reports.len(), "sinks see runs in order");
        self.reports.push(report.clone());
    }
}

/// Streams each report as one JSON line (`{"run":N,...}`) to a writer.
#[derive(Debug)]
pub struct JsonLinesSink<W: io::Write> {
    out: W,
}

impl<W: io::Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: io::Write> ReportSink for JsonLinesSink<W> {
    /// # Panics
    ///
    /// Panics on writer errors — a sweep whose output silently vanishes is
    /// worse than a crashed sweep.
    fn record(&mut self, seq: usize, report: &RunReport) {
        writeln!(self.out, "{}", report.to_json_tagged(Some(seq)))
            .expect("report sink write failed");
    }

    fn finish(&mut self) {
        self.out.flush().expect("report sink flush failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(policy: &str) -> RunReport {
        RunReport {
            benchmark: "em3d".to_string(),
            policy: policy.to_string(),
            policy_spec: format!("{policy}:bits=13"),
            directory: DirectoryKind::Coarse { cluster: 4 },
            workload: WorkloadParams::quick(4, 2),
            metrics: Metrics {
                predicted: 10,
                not_predicted: 2,
                exec_cycles: 1234,
                ..Metrics::default()
            },
            events_handled: 77,
        }
    }

    #[test]
    fn json_has_expected_fields() {
        let json = report("ltp").to_json();
        for needle in [
            "\"benchmark\":\"em3d\"",
            "\"policy\":\"ltp\"",
            "\"policy_spec\":\"ltp:bits=13\"",
            "\"directory\":\"coarse:4\"",
            "\"predicted\":10",
            "\"exec_cycles\":1234",
            "\"events_handled\":77",
            "\"extra_invalidations\":0",
            "\"broadcast_overflows\":0",
            "\"dir_queueing\":{\"mean\":0,\"samples\":0}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains("\"run\":"), "untagged report has no seq");
    }

    #[test]
    fn json_lines_sink_tags_and_terminates_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(0, &report("base"));
        sink.record(1, &report("ltp"));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"run\":0,"));
        assert!(lines[1].starts_with("{\"run\":1,"));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        sink.record(0, &report("base"));
        sink.record(1, &report("ltp"));
        assert_eq!(sink.reports().len(), 2);
        assert_eq!(sink.into_reports()[1].policy, "ltp");
    }
}
