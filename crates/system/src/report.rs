//! Run reports and the streaming [`ReportSink`] API.
//!
//! Every experiment produces a [`RunReport`]; sweeps stream reports through
//! a [`ReportSink`] *in run order* (the cross-product order of the sweep),
//! so a sink observes identical sequences whether the sweep executed
//! serially or in parallel. Two collectors ship in-tree:
//!
//! * [`MemorySink`] — keeps every report in memory (aggregation, tests);
//! * [`JsonLinesSink`] — writes one JSON object per line to any
//!   [`std::io::Write`] (files, pipes, stdout), the interchange format the
//!   CLI and the benchmark baselines use.
//!
//! Serialization goes through the shared [`ltp_core`] JSON encoder
//! ([`JsonValue`]/[`JsonObject`]): the report document is built as a value
//! tree — the core metrics as the fixed `"metrics"` object, probe output as
//! a self-describing `"sections"` object keyed by section name — and
//! rendered compactly. The `"sections"` key is present only when at least
//! one probe produced a section, so probe-less reports are byte-identical
//! to the pre-probe format.

use std::io;

use ltp_core::{JsonObject, JsonValue};
use ltp_dsm::DirectoryKind;
use ltp_workloads::WorkloadParams;

use crate::metrics::Metrics;
use crate::probe::MetricsSection;

/// The outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The workload that ran: a benchmark name, or the name recorded in a
    /// replayed trace's header.
    pub benchmark: String,
    /// The short family name of the policy ("base", "dsi", "ltp", …).
    pub policy: String,
    /// The canonical policy spec string (parameters included).
    pub policy_spec: String,
    /// The directory sharer organization the run used.
    pub directory: DirectoryKind,
    /// The machine geometry the run used.
    pub workload: WorkloadParams,
    /// Aggregated core metrics (the built-in core-metrics probe).
    pub metrics: Metrics,
    /// Self-describing output of every additional attached probe, in attach
    /// order (empty when no extra probes ran).
    pub sections: Vec<MetricsSection>,
    /// Simulator events handled (activity indicator).
    pub events_handled: u64,
}

impl RunReport {
    /// Encodes the report as one compact JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_tagged(None)
    }

    /// Encodes the report with an optional leading `"run":seq` field (the
    /// sweep's run index), as written by [`JsonLinesSink`].
    pub fn to_json_tagged(&self, seq: Option<usize>) -> String {
        let mut doc = JsonObject::new();
        if let Some(seq) = seq {
            doc.push("run", seq as u64);
        }
        doc.push("benchmark", self.benchmark.as_str());
        doc.push("policy", self.policy.as_str());
        doc.push("policy_spec", self.policy_spec.as_str());
        doc.push("directory", self.directory.to_string());
        doc.push(
            "workload",
            JsonObject::new()
                .field("nodes", self.workload.nodes)
                .field("seed", self.workload.seed)
                .field(
                    "iterations",
                    self.workload
                        .iterations
                        .map_or(JsonValue::Null, JsonValue::from),
                )
                .build(),
        );
        doc.push("metrics", metrics_json(&self.metrics));
        if !self.sections.is_empty() {
            // Sections key a JSON object, so names must be unique there:
            // repeated probes (or name-colliding custom ones) get a `#N`
            // suffix instead of silently shadowing each other in parsers
            // that keep only the last duplicate key. Deduplication is
            // against the keys actually emitted, so a literal "name#2"
            // section cannot collide with a suffixed one either.
            let mut sections = JsonObject::new();
            let mut emitted: Vec<String> = Vec::new();
            for section in &self.sections {
                let mut key = section.name.clone();
                let mut copy = 1;
                while emitted.contains(&key) {
                    copy += 1;
                    key = format!("{}#{copy}", section.name);
                }
                sections.push(&key, section.data.clone());
                emitted.push(key);
            }
            doc.push("sections", sections.build());
        }
        doc.push("events_handled", self.events_handled);
        doc.build().render()
    }
}

/// Encodes [`Metrics`] as a JSON value (the report's `"metrics"` object and
/// the core probe's standalone section share this shape).
pub(crate) fn metrics_json(m: &Metrics) -> JsonValue {
    let mut obj = JsonObject::new()
        .field("predicted", m.predicted)
        .field("predicted_timely", m.predicted_timely)
        .field("not_predicted", m.not_predicted)
        .field("mispredicted", m.mispredicted)
        .field("exec_cycles", m.exec_cycles)
        .field("misses", m.misses)
        .field("hits", m.hits)
        .field("self_invalidations_sent", m.self_invalidations_sent)
        .field("invalidations_sent", m.invalidations_sent)
        .field("extra_invalidations", m.extra_invalidations)
        .field("broadcast_overflows", m.broadcast_overflows);
    // Only sparse directories replace entries; gating the fields on use
    // keeps every unbounded-organization report byte-identical to the
    // pre-sparse format (the golden suite pins those bytes).
    if m.dir_evictions != 0 || m.eviction_invalidations != 0 {
        obj = obj
            .field("dir_evictions", m.dir_evictions)
            .field("eviction_invalidations", m.eviction_invalidations);
    }
    obj.field("messages", m.messages)
        .field("stale_ignored", m.stale_ignored)
        .field(
            "dir_queueing",
            JsonObject::new()
                .field("mean", m.dir_queueing.mean_or_zero())
                .field("samples", m.dir_queueing.samples())
                .build(),
        )
        .field(
            "dir_service",
            JsonObject::new()
                .field("mean", m.dir_service.mean_or_zero())
                .field("samples", m.dir_service.samples())
                .build(),
        )
        .field(
            "storage",
            JsonObject::new()
                .field("blocks_tracked", m.storage.blocks_tracked)
                .field("live_entries", m.storage.live_entries)
                .field("signature_bits", m.storage.signature_bits)
                .build(),
        )
        .build()
}

/// Receives per-run reports as a sweep executes.
///
/// `seq` is the run's index in the sweep's cross-product order; sinks are
/// always called with strictly increasing `seq` (0, 1, 2, …) even when runs
/// complete out of order on worker threads.
pub trait ReportSink {
    /// Observes the report of run `seq`.
    fn record(&mut self, seq: usize, report: &RunReport);

    /// Called once after the last report (flush point).
    fn finish(&mut self) {}
}

/// A sink that discards every report.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ReportSink for NullSink {
    fn record(&mut self, _seq: usize, _report: &RunReport) {}
}

/// Collects every report in memory, in run order.
#[derive(Debug, Default)]
pub struct MemorySink {
    reports: Vec<RunReport>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The reports collected so far, in run order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Consumes the sink, returning the collected reports.
    pub fn into_reports(self) -> Vec<RunReport> {
        self.reports
    }
}

impl ReportSink for MemorySink {
    fn record(&mut self, seq: usize, report: &RunReport) {
        debug_assert_eq!(seq, self.reports.len(), "sinks see runs in order");
        self.reports.push(report.clone());
    }
}

/// Streams each report as one JSON line (`{"run":N,...}`) to a writer.
#[derive(Debug)]
pub struct JsonLinesSink<W: io::Write> {
    out: W,
}

impl<W: io::Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: io::Write> ReportSink for JsonLinesSink<W> {
    /// # Panics
    ///
    /// Panics on writer errors — a sweep whose output silently vanishes is
    /// worse than a crashed sweep.
    fn record(&mut self, seq: usize, report: &RunReport) {
        writeln!(self.out, "{}", report.to_json_tagged(Some(seq)))
            .expect("report sink write failed");
    }

    fn finish(&mut self) {
        self.out.flush().expect("report sink flush failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(policy: &str) -> RunReport {
        RunReport {
            benchmark: "em3d".to_string(),
            policy: policy.to_string(),
            policy_spec: format!("{policy}:bits=13"),
            directory: DirectoryKind::Coarse { cluster: 4 },
            workload: WorkloadParams::quick(4, 2),
            metrics: Metrics {
                predicted: 10,
                not_predicted: 2,
                exec_cycles: 1234,
                ..Metrics::default()
            },
            sections: Vec::new(),
            events_handled: 77,
        }
    }

    #[test]
    fn json_has_expected_fields() {
        let json = report("ltp").to_json();
        for needle in [
            "\"benchmark\":\"em3d\"",
            "\"policy\":\"ltp\"",
            "\"policy_spec\":\"ltp:bits=13\"",
            "\"directory\":\"coarse:4\"",
            "\"predicted\":10",
            "\"exec_cycles\":1234",
            "\"events_handled\":77",
            "\"extra_invalidations\":0",
            "\"broadcast_overflows\":0",
            "\"dir_queueing\":{\"mean\":0,\"samples\":0}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains("\"run\":"), "untagged report has no seq");
        assert!(
            !json.contains("\"sections\""),
            "probe-less reports carry no sections key: {json}"
        );
    }

    #[test]
    fn sections_serialize_keyed_by_name_before_events_handled() {
        let mut r = report("base");
        r.sections.push(MetricsSection::new(
            "custom",
            JsonObject::new().field("k", 7u64).build(),
        ));
        let json = r.to_json();
        assert!(
            json.contains("\"sections\":{\"custom\":{\"k\":7}},\"events_handled\":77"),
            "{json}"
        );
    }

    #[test]
    fn duplicate_section_names_get_disambiguating_suffixes() {
        let mut r = report("base");
        for v in [1u64, 2, 3] {
            r.sections.push(MetricsSection::new(
                "dup",
                JsonObject::new().field("v", v).build(),
            ));
        }
        let json = r.to_json();
        assert!(
            json.contains(
                "\"sections\":{\"dup\":{\"v\":1},\"dup#2\":{\"v\":2},\"dup#3\":{\"v\":3}}"
            ),
            "{json}"
        );
    }

    #[test]
    fn json_lines_sink_tags_and_terminates_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(0, &report("base"));
        sink.record(1, &report("ltp"));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"run\":0,"));
        assert!(lines[1].starts_with("{\"run\":1,"));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn null_iterations_render_as_json_null() {
        let mut r = report("base");
        r.workload.iterations = None;
        let json = r.to_json();
        assert!(json.contains("\"iterations\":null"), "{json}");
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        sink.record(0, &report("base"));
        sink.record(1, &report("ltp"));
        assert_eq!(sink.reports().len(), 2);
        assert_eq!(sink.into_reports()[1].policy, "ltp");
    }
}
