//! Deprecated closed-enum policy selection, kept as a thin shim over the
//! open [`PolicyRegistry`] API.
//!
//! `PolicyKind` was the original way experiments named policies: a closed
//! enum inside this crate, meaning every new policy required editing
//! `ltp-system`. It survives only as a compatibility veneer — each variant
//! lowers to a spec string and resolves through the built-in registry. New
//! code should use spec strings or [`PolicyFactory`] values directly.

#![allow(deprecated)]

use std::sync::Arc;

use ltp_core::{PolicyFactory, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};

/// Which self-invalidation policy every node runs.
#[deprecated(
    since = "0.1.0",
    note = "use PolicyRegistry spec strings (e.g. \"ltp:bits=13\") or PolicyFactory values"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No self-invalidation (the baseline DSM).
    Base,
    /// Dynamic Self-Invalidation (versioning + sync-boundary flush).
    Dsi,
    /// The single-PC strawman predictor.
    LastPc,
    /// The per-block (PAp-like) trace LTP with the given signature width.
    LtpPerBlock {
        /// Signature width in bits (the paper sweeps 30/13/11/6).
        bits: u8,
    },
    /// The global-table (PAg-like) trace LTP.
    LtpGlobal {
        /// Signature width in bits (30 needed for usable accuracy).
        bits: u8,
        /// Number of sets in the global table.
        sets: u32,
        /// Associativity of the global table.
        ways: u32,
    },
    /// Per-block trace LTP with the order-sensitive XOR-rotate encoder.
    LtpXor {
        /// Signature width in bits.
        bits: u8,
    },
}

impl PolicyKind {
    /// The paper's base-case LTP: per-block tables, 13-bit signatures.
    pub const LTP: PolicyKind = PolicyKind::LtpPerBlock { bits: 13 };
    /// The paper's global-table configuration.
    pub const LTP_GLOBAL: PolicyKind = PolicyKind::LtpGlobal {
        bits: 30,
        sets: 256,
        ways: 2,
    };

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Base => "base",
            PolicyKind::Dsi => "dsi",
            PolicyKind::LastPc => "last-pc",
            PolicyKind::LtpPerBlock { .. } => "ltp",
            PolicyKind::LtpGlobal { .. } => "ltp-global",
            PolicyKind::LtpXor { .. } => "ltp-xor",
        }
    }

    /// The registry spec string this variant lowers to.
    pub fn spec(self) -> String {
        match self {
            PolicyKind::Base => "base".to_string(),
            PolicyKind::Dsi => "dsi".to_string(),
            PolicyKind::LastPc => "last-pc".to_string(),
            PolicyKind::LtpPerBlock { bits } => format!("ltp:bits={bits}"),
            PolicyKind::LtpGlobal { bits, sets, ways } => {
                format!("ltp-global:bits={bits},sets={sets},ways={ways}")
            }
            PolicyKind::LtpXor { bits } => format!("ltp-xor:bits={bits}"),
        }
    }

    /// Resolves this variant to a registry factory.
    ///
    /// # Panics
    ///
    /// Panics if a signature width is outside `1..=32`.
    pub fn factory(self) -> Arc<dyn PolicyFactory> {
        PolicyRegistry::with_builtins()
            .parse(&self.spec())
            .expect("builtin variants resolve")
    }

    /// Instantiates one policy object for a node.
    ///
    /// # Panics
    ///
    /// Panics if a signature width is outside `1..=32`.
    pub fn build(self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        self.factory().build(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_lowers_to_a_resolvable_spec() {
        for kind in [
            PolicyKind::Base,
            PolicyKind::Dsi,
            PolicyKind::LastPc,
            PolicyKind::LTP,
            PolicyKind::LTP_GLOBAL,
            PolicyKind::LtpXor { bits: 13 },
        ] {
            let factory = kind.factory();
            assert_eq!(factory.name(), kind.name());
            let policy = kind.build(PredictorConfig::default());
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "an integer in 1..=32")]
    fn invalid_width_panics_as_before() {
        PolicyKind::LtpPerBlock { bits: 99 }.build(PredictorConfig::default());
    }
}
