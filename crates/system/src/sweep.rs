//! The batched experiment driver: cross products of workloads × policies ×
//! machine geometries, executed in parallel.
//!
//! [`SweepSpec`] is how figures, tables, and ablations are produced: declare
//! the design points once, then [`SweepSpec::execute`] fans the independent
//! runs out over worker threads (every [`crate::Machine`] is self-contained,
//! so runs never share mutable state) and streams the per-run
//! [`RunReport`]s through a [`ReportSink`] *in run order*. Because each
//! simulation is deterministic, a parallel sweep produces reports
//! bit-identical to a serial one — parallelism changes wall-clock time and
//! nothing else.
//!
//! # Examples
//!
//! ```
//! use ltp_core::PolicyRegistry;
//! use ltp_system::SweepSpec;
//! use ltp_workloads::{Benchmark, WorkloadParams};
//!
//! let registry = PolicyRegistry::with_builtins();
//! let reports = SweepSpec::new()
//!     .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
//!     .policy_specs(&registry, &["base", "ltp:bits=13"])
//!     .unwrap()
//!     .geometry(WorkloadParams::quick(4, 3))
//!     .collect();
//! assert_eq!(reports.len(), 4); // 2 benchmarks × 2 policies × 1 geometry
//! assert_eq!(reports[0].policy, "base");
//! ```

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use ltp_core::{PolicyFactory, PolicyRegistry, PolicySpecError, PredictorConfig};
use ltp_dsm::DirectoryKind;
use ltp_workloads::{
    Benchmark, RunEstimate, StreamingTrace, Trace, WorkloadParams, WorkloadSource,
};

use crate::experiment::ExperimentSpec;
use crate::probe::{ProbeFactory, ProbeRegistry, ProbeSpecError};
use crate::report::{MemorySink, ReportSink, RunReport};

/// A cross product of workload sources × policies × machine geometries ×
/// directory organizations, plus the execution strategy for running it.
///
/// Sources may be synthetic benchmarks, recorded traces, or both in one
/// sweep (trace sources pin their recorded geometry; see
/// [`SweepSpec::trace`]). Run order (the `seq` passed to sinks) is
/// row-major over `source × policy × geometry × directory`: the directory
/// varies fastest, then the geometry, then the policy, then the source.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    sources: Vec<WorkloadSource>,
    policies: Vec<Arc<dyn PolicyFactory>>,
    geometries: Vec<WorkloadParams>,
    directories: Vec<DirectoryKind>,
    probes: Vec<Arc<dyn ProbeFactory>>,
    predictor: PredictorConfig,
    threads: Option<usize>,
    shards: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

impl SweepSpec {
    /// An empty sweep: no workloads, no policies, the default geometry
    /// (the paper's 32-node machine), automatic parallelism.
    pub fn new() -> Self {
        SweepSpec {
            sources: Vec::new(),
            policies: Vec::new(),
            geometries: Vec::new(),
            directories: Vec::new(),
            probes: Vec::new(),
            predictor: PredictorConfig::default(),
            threads: None,
            shards: 1,
        }
    }

    /// Adds one workload source (a benchmark, a recorded trace, or an
    /// explicit [`WorkloadSource`]).
    pub fn source(mut self, source: impl Into<WorkloadSource>) -> Self {
        self.sources.push(source.into());
        self
    }

    /// Adds one benchmark.
    pub fn benchmark(self, benchmark: Benchmark) -> Self {
        self.source(benchmark)
    }

    /// Adds several benchmarks.
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.sources
            .extend(benchmarks.into_iter().map(WorkloadSource::from));
        self
    }

    /// Adds the whole nine-application Table 2 suite.
    pub fn all_benchmarks(self) -> Self {
        self.benchmarks(Benchmark::ALL)
    }

    /// Adds one recorded trace as a workload source.
    ///
    /// A trace replays at its recorded geometry regardless of the sweep's
    /// [`SweepSpec::geometry`] list — with several geometries, the trace's
    /// design points repeat identically (sinks still see every run).
    pub fn trace(self, trace: Arc<Trace>) -> Self {
        self.source(trace)
    }

    /// Adds one trace replayed incrementally from its file (bounded
    /// per-node decode window — for traces too large to materialize).
    ///
    /// Streamed runs report bit-identically to buffered replays of the
    /// same file; geometry pins exactly like [`SweepSpec::trace`]. Each
    /// run's per-node programs reopen the file, so it must remain readable
    /// for the duration of the sweep — a file that vanishes mid-sweep
    /// panics the affected run with a message naming the trace (the
    /// drivers treat workloads as infallible once validated).
    pub fn streaming_trace(self, trace: Arc<StreamingTrace>) -> Self {
        self.source(trace)
    }

    /// Adds one policy factory (the open end of the API: any external
    /// `impl PolicyFactory` slots in here).
    pub fn policy(mut self, policy: Arc<dyn PolicyFactory>) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds one policy resolved from a spec string.
    ///
    /// # Errors
    ///
    /// Returns the [`PolicySpecError`] from the registry.
    pub fn policy_spec(
        mut self,
        registry: &PolicyRegistry,
        spec: &str,
    ) -> Result<Self, PolicySpecError> {
        self.policies.push(registry.parse(spec)?);
        Ok(self)
    }

    /// Adds several policies resolved from spec strings.
    ///
    /// # Errors
    ///
    /// Returns the first [`PolicySpecError`] encountered.
    pub fn policy_specs(
        mut self,
        registry: &PolicyRegistry,
        specs: &[&str],
    ) -> Result<Self, PolicySpecError> {
        for spec in specs {
            self = self.policy_spec(registry, spec)?;
        }
        Ok(self)
    }

    /// Adds one machine geometry (nodes / seed / iteration override).
    pub fn geometry(mut self, params: WorkloadParams) -> Self {
        self.geometries.push(params);
        self
    }

    /// Shorthand for [`Self::geometry`] with a quick test geometry.
    pub fn quick_geometry(self, nodes: u16, iterations: u32) -> Self {
        self.geometry(WorkloadParams::quick(nodes, iterations))
    }

    /// Adds one directory sharer organization to the cross product (the
    /// default, when none is added, is the paper's full map).
    pub fn directory(mut self, directory: DirectoryKind) -> Self {
        self.directories.push(directory);
        self
    }

    /// Adds several directory organizations.
    pub fn directories(mut self, kinds: impl IntoIterator<Item = DirectoryKind>) -> Self {
        self.directories.extend(kinds);
        self
    }

    /// Attaches one probe factory to *every* run of the cross product: each
    /// run builds a fresh probe from it, and the probe's section lands in
    /// that run's [`RunReport::sections`].
    pub fn probe(mut self, probe: Arc<dyn ProbeFactory>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Attaches one probe resolved from a spec string.
    ///
    /// # Errors
    ///
    /// Returns the [`ProbeSpecError`] from the registry.
    pub fn probe_spec(
        mut self,
        registry: &ProbeRegistry,
        spec: &str,
    ) -> Result<Self, ProbeSpecError> {
        self.probes.push(registry.parse(spec)?);
        Ok(self)
    }

    /// Sets the predictor tuning knobs shared by every run.
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the number of simulation shards for *every* run of the cross
    /// product (see [`ExperimentSpec::shards`]). Sharding splits one
    /// machine across worker threads; it changes wall-clock time only —
    /// every report stays bit-identical to a one-shard run. `0` is treated
    /// as 1. Orthogonal to [`SweepSpec::threads`], which parallelizes
    /// *across* runs.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Forces serial execution (equivalent to `threads(1)`).
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Caps worker threads; `0` restores automatic sizing (one worker per
    /// available CPU, capped by the number of runs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The configured worker-thread cap (`None` = automatic sizing); the
    /// campaign driver reuses the sweep's setting for its own dispatch.
    pub(crate) fn threads_cap(&self) -> Option<usize> {
        self.threads
    }

    /// Number of runs in the cross product.
    pub fn len(&self) -> usize {
        self.sources.len()
            * self.policies.len()
            * self.geometries.len().max(1)
            * self.directories.len().max(1)
    }

    /// Whether the cross product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the cross product as individual experiment specs, in
    /// run order.
    pub fn runs(&self) -> Vec<ExperimentSpec> {
        let default_geometry = [WorkloadParams::default()];
        let geometries: &[WorkloadParams] = if self.geometries.is_empty() {
            &default_geometry
        } else {
            &self.geometries
        };
        let default_directory = [DirectoryKind::Full];
        let directories: &[DirectoryKind] = if self.directories.is_empty() {
            &default_directory
        } else {
            &self.directories
        };
        let mut runs = Vec::with_capacity(self.len());
        for source in &self.sources {
            for policy in &self.policies {
                for &workload in geometries {
                    for &directory in directories {
                        runs.push(ExperimentSpec {
                            shards: self.shards,
                            source: source.clone(),
                            policy: Arc::clone(policy),
                            workload: source.effective_params(workload),
                            predictor: self.predictor,
                            directory,
                            probes: self.probes.clone(),
                            barrier_fanin: 4,
                        });
                    }
                }
            }
        }
        runs
    }

    /// The parallel execution order: run indices longest-estimated-first.
    ///
    /// Runs vary 10×+ in length across the suite (dsmc vs raytrace), so
    /// dispatching the long ones first cuts the tail a straggler started
    /// last would otherwise add to a mixed sweep. Estimates come from
    /// [`ExperimentSpec::estimated_ops`] (trace headers, script lengths);
    /// runs of *unknown* length are scheduled first — conservatively
    /// assumed long — in cross-product order, followed by known runs by
    /// descending op count (ties in cross-product order).
    ///
    /// Scheduling changes execution order only: sinks and the returned
    /// report vector always observe cross-product order, and every report
    /// is bit-identical to a serial sweep's. Serial execution
    /// ([`SweepSpec::serial`] / one worker) does not consult the schedule
    /// at all — with a single worker there is no tail to cut, and running
    /// in cross-product order lets reports stream without a reorder
    /// buffer.
    pub fn schedule(&self) -> Vec<(usize, Option<RunEstimate>)> {
        Self::schedule_for(&self.runs())
    }

    /// [`SweepSpec::schedule`] over an already-materialized run list — the
    /// parallel executor (and any caller that also needs the runs, like the
    /// CLI's `--debug` dump) reuses the runs it already holds instead of
    /// rebuilding the cross product and every estimate a second time.
    pub fn schedule_for(runs: &[ExperimentSpec]) -> Vec<(usize, Option<RunEstimate>)> {
        let mut entries: Vec<(usize, Option<RunEstimate>)> = runs
            .iter()
            .map(ExperimentSpec::estimated_ops)
            .enumerate()
            .collect();
        entries.sort_by_key(|&(seq, est)| (Reverse(est.map_or(u64::MAX, |e| e.ops)), seq));
        entries
    }

    /// Executes every run, streaming reports through `sink` in run order,
    /// and returns the reports (also in run order).
    ///
    /// With more than one worker thread, runs are dispatched in
    /// [`SweepSpec::schedule`] order (longest first) and execute
    /// concurrently; a reorder buffer restores run order before the sink
    /// observes anything, and the reports are bit-identical to serial
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if any run panics (e.g. a machine deadlock).
    pub fn execute(&self, sink: &mut dyn ReportSink) -> Vec<RunReport> {
        let runs = self.runs();
        let workers = self
            .threads
            .unwrap_or_else(|| {
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, runs.len().max(1));

        let reports = if workers <= 1 {
            let mut reports = Vec::with_capacity(runs.len());
            for (seq, run) in runs.iter().enumerate() {
                let report = run.run();
                sink.record(seq, &report);
                reports.push(report);
            }
            reports
        } else {
            self.execute_parallel(&runs, workers, sink)
        };
        sink.finish();
        reports
    }

    /// Executes every run into a [`MemorySink`], returning the reports.
    pub fn collect(&self) -> Vec<RunReport> {
        self.execute(&mut MemorySink::new())
    }

    fn execute_parallel(
        &self,
        runs: &[ExperimentSpec],
        workers: usize,
        sink: &mut dyn ReportSink,
    ) -> Vec<RunReport> {
        // Dispatch longest-first (see `schedule`); the reorder buffer below
        // restores cross-product order for the sink regardless.
        let order: Vec<usize> = Self::schedule_for(runs)
            .into_iter()
            .map(|(seq, _)| seq)
            .collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunReport)>();
        let mut reports: Vec<Option<RunReport>> = runs.iter().map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let order = &order;
                scope.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seq) = order.get(slot) else { break };
                    let report = runs[seq].run();
                    if tx.send((seq, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Reorder buffer: deliver to the sink in run order no matter
            // which worker finishes first.
            let mut pending: BTreeMap<usize, RunReport> = BTreeMap::new();
            let mut next_emit = 0usize;
            for (seq, report) in rx {
                pending.insert(seq, report);
                while let Some(report) = pending.remove(&next_emit) {
                    sink.record(next_emit, &report);
                    reports[next_emit] = Some(report);
                    next_emit += 1;
                }
            }
        });
        reports
            .into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::JsonLinesSink;
    use ltp_core::{NullPolicy, SelfInvalidationPolicy};

    fn small_sweep() -> SweepSpec {
        let registry = PolicyRegistry::with_builtins();
        SweepSpec::new()
            .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
            .policy_specs(&registry, &["base", "dsi", "ltp:bits=13"])
            .unwrap()
            .quick_geometry(4, 3)
    }

    #[test]
    fn cross_product_order_is_row_major() {
        let sweep = small_sweep().quick_geometry(2, 1);
        assert_eq!(sweep.len(), 2 * 3 * 2);
        let runs = sweep.runs();
        assert_eq!(runs.len(), 12);
        // Geometry fastest, then policy, then source.
        assert_eq!(runs[0].source.name(), "em3d");
        assert_eq!(runs[0].workload.nodes, 4);
        assert_eq!(runs[1].workload.nodes, 2);
        assert_eq!(runs[2].policy.name(), "dsi");
        assert_eq!(runs[6].source.name(), "tomcatv");
    }

    #[test]
    fn default_geometry_is_applied_when_none_given() {
        let registry = PolicyRegistry::with_builtins();
        let sweep = SweepSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_spec(&registry, "base")
            .unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep.runs()[0].workload.nodes, 32);
    }

    #[test]
    fn parallel_reports_match_serial_exactly() {
        let sweep = small_sweep();
        let serial = sweep.clone().serial().collect();
        let parallel = sweep.threads(4).collect();
        assert_eq!(serial.len(), 6);
        assert_eq!(serial, parallel, "parallelism must not change results");
    }

    #[test]
    fn sink_sees_runs_in_order_even_in_parallel() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let reports = small_sweep().threads(4).execute(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), reports.len());
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"run\":{i},")),
                "line {i} out of order: {line}"
            );
        }
    }

    #[test]
    fn external_factories_sweep_without_touching_the_system_crate() {
        // The acceptance scenario: a policy defined *outside* every ltp
        // crate, registered and swept through the public API only.
        #[derive(Debug)]
        struct AlwaysOff;
        impl PolicyFactory for AlwaysOff {
            fn name(&self) -> &str {
                "always-off"
            }
            fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
                Box::new(NullPolicy)
            }
        }

        let mut registry = PolicyRegistry::with_builtins();
        registry.register_factory(Arc::new(AlwaysOff)).unwrap();
        let reports = SweepSpec::new()
            .benchmark(Benchmark::Ocean)
            .policy_spec(&registry, "always-off")
            .unwrap()
            .quick_geometry(4, 2)
            .collect();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].policy, "always-off");
        assert_eq!(reports[0].metrics.self_invalidations_sent, 0);
    }

    #[test]
    fn traces_and_synthetics_mix_in_one_sweep() {
        let params = WorkloadParams::quick(4, 2);
        let trace = Arc::new(Trace::record(Benchmark::Em3d, &params));
        let registry = PolicyRegistry::with_builtins();
        let reports = SweepSpec::new()
            .trace(Arc::clone(&trace))
            .benchmark(Benchmark::Em3d)
            .policy_specs(&registry, &["base", "ltp"])
            .unwrap()
            .geometry(params)
            .collect();
        assert_eq!(reports.len(), 4);
        // The trace rows are bit-identical to the synthetic rows.
        assert_eq!(reports[0], reports[2], "base: replay == synthetic");
        assert_eq!(reports[1], reports[3], "ltp: replay == synthetic");
    }

    #[test]
    fn streaming_traces_sweep_identically_to_buffered_ones() {
        let params = WorkloadParams::quick(4, 2);
        let trace = Arc::new(Trace::record(Benchmark::Moldyn, &params));
        let path =
            std::env::temp_dir().join(format!("ltp-sweep-stream-{}.ltrace", std::process::id()));
        trace.save(&path).unwrap();
        let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
        let registry = PolicyRegistry::with_builtins();
        let reports = SweepSpec::new()
            .trace(Arc::clone(&trace))
            .streaming_trace(streaming)
            .policy_specs(&registry, &["base", "ltp"])
            .unwrap()
            .geometry(params)
            .collect();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0], reports[2], "base: streamed == buffered");
        assert_eq!(reports[1], reports[3], "ltp: streamed == buffered");
    }

    #[test]
    fn trace_sources_pin_geometry_in_sweeps() {
        let recorded = WorkloadParams::quick(4, 2);
        let trace = Arc::new(Trace::record(Benchmark::Ocean, &recorded));
        let registry = PolicyRegistry::with_builtins();
        let reports = SweepSpec::new()
            .trace(trace)
            .policy_spec(&registry, "base")
            .unwrap()
            .quick_geometry(8, 9) // ignored by the trace source
            .collect();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].workload, recorded);
    }

    #[test]
    fn directory_axis_crosses_and_varies_fastest() {
        let registry = PolicyRegistry::with_builtins();
        let sweep = SweepSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_spec(&registry, "base")
            .unwrap()
            .quick_geometry(4, 2)
            .directory(DirectoryKind::Full)
            .directory(DirectoryKind::Coarse { cluster: 2 })
            .directory(DirectoryKind::LimitedPtr { pointers: 2 });
        assert_eq!(sweep.len(), 3);
        let runs = sweep.runs();
        assert_eq!(runs[0].directory, DirectoryKind::Full);
        assert_eq!(runs[1].directory, DirectoryKind::Coarse { cluster: 2 });
        assert_eq!(runs[2].directory, DirectoryKind::LimitedPtr { pointers: 2 });
        let reports = sweep.collect();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[1].directory, DirectoryKind::Coarse { cluster: 2 });
        // No-directory sweeps default to the full map.
        let default_runs = SweepSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_spec(&registry, "base")
            .unwrap()
            .runs();
        assert_eq!(default_runs[0].directory, DirectoryKind::Full);
    }

    #[test]
    fn empty_sweep_is_a_no_op() {
        let sweep = SweepSpec::new();
        assert!(sweep.is_empty());
        assert!(sweep.collect().is_empty());
    }
}
