//! Randomized tests over the full machine: *any* well-formed random program
//! mix must run to completion (no protocol deadlock), with consistent
//! metrics, under every self-invalidation policy.
//!
//! The machine itself asserts data-token monotonicity at every directory
//! (a committed write may never be lost), so each case doubles as a
//! coherence check under randomized interleavings — including the
//! self-invalidation races the predictors inject.
//!
//! Generation is driven by the repository's own seeded [`SimRng`], so every
//! "random" case is reproducible from its printed seed.

use ltp::core::{BlockId, Pc, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::SystemConfig;
use ltp::sim::{Cycle, SimRng, StopReason};
use ltp::system::Machine;
use ltp::workloads::{Lock, LoopedScript, Op, Program};

/// A compact generator-friendly description of one memory op.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Think(u16),
    Read(u8, u8),   // (block, pc-site)
    Write(u8, u8),  // (block, pc-site)
    Locked(u8, u8), // critical section on lock l writing block b
}

fn gen_op(rng: &mut SimRng) -> GenOp {
    match rng.below(4) {
        0 => GenOp::Think(rng.range(1, 200) as u16),
        1 => GenOp::Read(rng.below(24) as u8, rng.below(12) as u8),
        2 => GenOp::Write(rng.below(24) as u8, rng.below(12) as u8),
        _ => GenOp::Locked(rng.below(3) as u8, rng.below(24) as u8),
    }
}

/// Per-node op sequences plus the iteration count; barriers are appended
/// after every node's sequence so the programs stay phase-aligned.
fn gen_workload(rng: &mut SimRng, nodes: usize) -> (Vec<Vec<GenOp>>, u32) {
    let per_node = (0..nodes)
        .map(|_| {
            let len = rng.range(1, 12) as usize;
            (0..len).map(|_| gen_op(rng)).collect()
        })
        .collect();
    (per_node, rng.range(1, 4) as u32)
}

/// Lowers the generated description to real programs. Lock blocks live in a
/// region disjoint from data blocks; every critical section is
/// acquire/write/release, so locks always pair.
fn lower(per_node: &[Vec<GenOp>], iters: u32) -> Vec<Box<dyn Program>> {
    const LOCK_BASE: u64 = 1000;
    per_node
        .iter()
        .map(|ops| {
            let mut body: Vec<Op> = Vec::new();
            for op in ops {
                match *op {
                    GenOp::Think(c) => body.push(Op::Think(u64::from(c))),
                    GenOp::Read(b, s) => body.push(Op::Read {
                        pc: Pc::new(0x5_0000 + u32::from(s) * 0x9c4),
                        block: BlockId::new(u64::from(b)),
                    }),
                    GenOp::Write(b, s) => body.push(Op::Write {
                        pc: Pc::new(0x6_0000 + u32::from(s) * 0xa38),
                        block: BlockId::new(u64::from(b)),
                    }),
                    GenOp::Locked(l, b) => {
                        let lock = Lock::library(BlockId::new(LOCK_BASE + u64::from(l)), 0x7_2c10);
                        body.push(Op::Lock(lock));
                        body.push(Op::Write {
                            pc: Pc::new(0x7_5e80),
                            block: BlockId::new(u64::from(b)),
                        });
                        body.push(Op::Unlock(lock));
                    }
                }
            }
            body.push(Op::Barrier(0));
            Box::new(LoopedScript::new(Vec::new(), body, iters)) as Box<dyn Program>
        })
        .collect()
}

fn run(policy_spec: &str, per_node: &[Vec<GenOp>], iters: u32) -> ltp::system::Metrics {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse(policy_spec).expect("builtin spec");
    let nodes = per_node.len() as u16;
    let cfg = SystemConfig::builder().nodes(nodes).build().expect("valid");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let mut machine = Machine::new(cfg, policies, lower(per_node, iters));
    machine.attach_core_metrics();
    let summary = machine.run(Cycle::new(200_000_000));
    assert_ne!(
        summary.stop,
        StopReason::HorizonReached,
        "protocol deadlock under {policy_spec}:\n{}",
        machine.stuck_report()
    );
    assert!(machine.all_finished());
    let (metrics, _) = machine.finish();
    metrics.expect("core metrics attached")
}

#[test]
fn any_program_mix_completes_under_every_policy() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0001);
    for case in 0..48 {
        let (per_node, iters) = gen_workload(&mut rng, 4);
        for policy in ["base", "dsi", "ltp"] {
            let m = run(policy, &per_node, iters);
            assert_eq!(
                m.invalidation_events(),
                m.predicted + m.not_predicted,
                "case {case} under {policy}"
            );
            assert!(
                m.predicted_timely <= m.predicted,
                "case {case} under {policy}"
            );
            assert!(
                m.mispredicted <= m.self_invalidations_sent,
                "case {case} under {policy}"
            );
        }
    }
}

#[test]
fn self_invalidation_never_changes_program_traffic_shape() {
    // The CPUs execute the same op streams regardless of policy: every
    // program access completes exactly once, as either a hit or a miss
    // (a premature self-invalidation turns a hit into a miss but never
    // adds or removes accesses). Lock spinning adds timing-dependent
    // accesses, so the invariant is asserted for lock-free mixes only.
    let mut rng = SimRng::from_seed(0x15CA_2000_0002);
    let mut lock_free_cases = 0;
    while lock_free_cases < 12 {
        let (per_node, iters) = gen_workload(&mut rng, 3);
        let has_locks = per_node
            .iter()
            .flatten()
            .any(|op| matches!(op, GenOp::Locked(..)));
        if has_locks {
            continue;
        }
        lock_free_cases += 1;
        let base = run("base", &per_node, iters);
        let ltp = run("ltp", &per_node, iters);
        assert_eq!(
            base.hits + base.misses,
            ltp.hits + ltp.misses,
            "case {lock_free_cases}"
        );
    }
}

#[test]
fn deterministic_replay() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0003);
    for case in 0..12 {
        let (per_node, iters) = gen_workload(&mut rng, 3);
        let a = run("ltp", &per_node, iters);
        let b = run("ltp", &per_node, iters);
        assert_eq!(a, b, "case {case}");
    }
}
