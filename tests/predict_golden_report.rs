//! Golden-report test: `reports/predictors.md` is regenerated from the
//! committed trace and must match byte for byte.
//!
//! The committed report is the human-readable face of the predictor zoo;
//! this test (and the matching CI step, which regenerates it through the
//! `ltp predict` CLI) pins it to the code. If a predictor, the replay
//! engine, or the renderer changes behaviour, the diff shows up here —
//! regenerate with:
//!
//! ```text
//! cargo run --release -- predict -t tests/data/em3d-4node-3iter.v1.ltrace \
//!     --report reports/predictors.md --quiet
//! ```

use ltp::core::PolicyRegistry;
use ltp::system::predict::{render_report, PredictSpec, DEFAULT_ZOO};
use ltp::workloads::Trace;

#[test]
fn committed_report_matches_regeneration_byte_for_byte() {
    let golden = include_str!("../reports/predictors.md");
    let trace = Trace::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/em3d-4node-3iter.v1.ltrace"
    ))
    .expect("committed trace loads");
    let registry = PolicyRegistry::with_builtins();
    let spec = PredictSpec::new()
        .trace(std::sync::Arc::new(trace))
        .default_zoo(&registry)
        .expect("builtin zoo resolves");
    let rows = spec.execute();
    assert_eq!(rows.len(), DEFAULT_ZOO.len(), "one row per zoo member");
    let regenerated = render_report(&spec, &rows);
    assert_eq!(
        regenerated, golden,
        "reports/predictors.md drifted — regenerate it (see module docs)"
    );
    assert!(
        golden.contains("**Provenance:** inputs fingerprint `"),
        "the committed report must state which inputs produced it"
    );
}

#[test]
fn provenance_fingerprint_tracks_the_inputs() {
    let registry = PolicyRegistry::with_builtins();
    let base = PredictSpec::new()
        .benchmark(ltp::workloads::Benchmark::Em3d)
        .default_zoo(&registry)
        .unwrap();
    let same = PredictSpec::new()
        .benchmark(ltp::workloads::Benchmark::Em3d)
        .default_zoo(&registry)
        .unwrap();
    assert_eq!(base.fingerprint(), same.fingerprint());
    let other_workload = PredictSpec::new()
        .benchmark(ltp::workloads::Benchmark::Ocean)
        .default_zoo(&registry)
        .unwrap();
    assert_ne!(base.fingerprint(), other_workload.fingerprint());
    let other_zoo = PredictSpec::new()
        .benchmark(ltp::workloads::Benchmark::Em3d)
        .policy_specs(&registry, &["ltp", "oracle"])
        .unwrap();
    assert_ne!(base.fingerprint(), other_zoo.fingerprint());
}
