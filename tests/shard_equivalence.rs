//! Sharded-engine equivalence gates: a sharded run is **bit-identical** to
//! the serial machine — same `RunReport` JSON (metrics and every probe
//! section) and same recorded trace bytes — for every benchmark, shard
//! count, and directory organization.
//!
//! These are the determinism gates of the conservative time-stepped shard
//! engine: cross-shard messages travel through per-edge FIFO queues under
//! barrier-synchronized windows, so partitioning must never reorder any
//! observable interaction. Randomized geometries are driven by the seeded
//! [`SimRng`], so every case is reproducible.

use std::sync::Arc;

use ltp::dsm::DirectoryKind;
use ltp::sim::SimRng;
use ltp::system::{ExperimentSpec, RunReport};
use ltp::workloads::{Benchmark, StreamingTrace};

/// Builds the common spec: `benchmark` at a small geometry with the full
/// observer stack attached (per-node breakdown + both histograms), so the
/// equivalence below covers dynamic probe sections, not just core metrics.
fn spec(benchmark: Benchmark, nodes: u16, iters: u32) -> ExperimentSpec {
    ExperimentSpec::builder(benchmark)
        .policy_spec("ltp")
        .unwrap()
        .nodes(nodes)
        .iterations(iters)
        .probe_spec("per-node")
        .unwrap()
        .probe_spec("hist:self-inv-lead")
        .unwrap()
        .probe_spec("hist:msg-latency")
        .unwrap()
        .build()
}

fn run_sharded(base: &ExperimentSpec, shards: usize) -> RunReport {
    let mut spec = base.clone();
    spec.shards = shards;
    spec.run()
}

#[test]
fn all_nine_benchmarks_are_bit_identical_across_shard_counts() {
    for benchmark in Benchmark::ALL {
        let base = spec(benchmark, 8, 2);
        let serial = base.run().to_json();
        for shards in [2usize, 4, 8] {
            let sharded = run_sharded(&base, shards).to_json();
            assert_eq!(
                sharded, serial,
                "{benchmark}: {shards}-shard report bytes diverged from serial"
            );
        }
    }
}

#[test]
fn directory_organizations_shard_identically() {
    // Home assignment is shard-aware for every sharer representation; the
    // imprecise organizations (coarse clusters, limited pointers with
    // broadcast overflow) must partition as cleanly as the full map.
    for directory in [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 4 },
        DirectoryKind::LimitedPtr { pointers: 4 },
    ] {
        let mut base = spec(Benchmark::Em3d, 8, 3);
        base.directory = directory;
        let serial = base.run().to_json();
        for shards in [2usize, 4, 8] {
            let sharded = run_sharded(&base, shards).to_json();
            assert_eq!(
                sharded, serial,
                "em3d under {directory}: {shards} shards diverged from serial"
            );
        }
    }
}

#[test]
fn record_tee_is_identical_under_sharding() {
    // The live trace recorder observes `OpRetired` through the same
    // canonical-order event feed as every other probe, so the `.ltrace` a
    // sharded run tees out is byte-for-byte the serial recording.
    let path = |tag: &str| {
        std::env::temp_dir().join(format!("ltp-shard-tee-{}-{tag}.ltrace", std::process::id()))
    };
    let record = |shards: usize, tag: &str| {
        let out = path(tag);
        let mut spec = ExperimentSpec::builder(Benchmark::Tomcatv)
            .policy_spec("ltp")
            .unwrap()
            .nodes(8)
            .iterations(3)
            .probe_spec(&format!("record:{}", out.display()))
            .unwrap()
            .build();
        spec.shards = shards;
        let report = spec.run();
        let bytes = std::fs::read(&out).expect("recording written");
        std::fs::remove_file(&out).ok();
        (report.to_json(), bytes)
    };
    let (serial_report, serial_trace) = record(1, "serial");
    // The recording is a valid trace, not just identical garbage.
    let check = path("check");
    std::fs::write(&check, &serial_trace).unwrap();
    StreamingTrace::open(&check).expect("recorded trace validates");
    std::fs::remove_file(&check).ok();
    for shards in [2usize, 4, 8] {
        let (report, trace) = record(shards, &format!("s{shards}"));
        assert_eq!(report, serial_report, "{shards}-shard report diverged");
        assert_eq!(
            trace, serial_trace,
            "{shards}-shard recorded trace bytes diverged from serial"
        );
    }
}

#[test]
fn randomized_geometries_shard_identically() {
    // Random (benchmark, nodes, iterations, shard count) points — shard
    // counts that do not divide the node count exercise the uneven
    // partition ranges, and counts above the node count exercise clamping.
    let mut rng = SimRng::from_seed(0x15CA_2000_0600);
    for case in 0..10 {
        let benchmark = Benchmark::ALL[rng.below(Benchmark::ALL.len() as u64) as usize];
        let nodes = rng.range(2, 12) as u16;
        let iters = rng.range(1, 3) as u32;
        let shards = rng.range(2, 16) as usize;
        let base = spec(benchmark, nodes, iters);
        let serial = base.run().to_json();
        let sharded = run_sharded(&base, shards).to_json();
        assert_eq!(
            sharded, serial,
            "case {case}: {benchmark} n={nodes} i={iters} at {shards} shards"
        );
    }
}

#[test]
fn one_shard_is_the_serial_path() {
    // `shards = 1` runs the machine inline — not a one-worker parallel
    // engine — and is indistinguishable from an unset shard count.
    let base = spec(Benchmark::Dsmc, 6, 2);
    let serial = base.run();
    let one = run_sharded(&base, 1);
    assert_eq!(one, serial, "explicit shards=1 diverged from default");
}

#[test]
fn streamed_replay_shards_identically() {
    // Trace replay through per-node streaming cursors (file-backed
    // programs with read-ahead) under the sharded engine: the whole
    // record → stream → shard pipeline is bit-exact end to end.
    let params = ltp::workloads::WorkloadParams::quick(8, 3);
    let trace = ltp::workloads::Trace::record(Benchmark::Moldyn, &params);
    let path = std::env::temp_dir().join(format!("ltp-shard-stream-{}.ltrace", std::process::id()));
    trace.save(&path).unwrap();
    let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
    let base = ExperimentSpec::replay_streaming(Arc::clone(&streaming))
        .policy_spec("ltp")
        .unwrap()
        .build();
    let serial = base.run().to_json();
    for shards in [2usize, 4] {
        let sharded = run_sharded(&base, shards).to_json();
        assert_eq!(sharded, serial, "streamed replay at {shards} shards");
    }
    std::fs::remove_file(&path).ok();
}
