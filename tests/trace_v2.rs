//! Format v2 + streaming replay acceptance: loop compression reaches its
//! target density, streamed replay is bit-identical to buffered replay and
//! to the synthetic run with bounded decoder memory, random valid traces
//! round-trip both decode paths exactly, malformed v2 inputs are rejected
//! precisely, and the committed v1 golden file keeps loading forever.

use std::path::PathBuf;
use std::sync::Arc;

use ltp::system::ExperimentSpec;
use ltp::workloads::trace::{TRACE_VERSION, TRACE_VERSION_V1};
use ltp::workloads::{
    collect_ops, random_trace, Benchmark, StreamingTrace, StreamingTraceProgram, Trace, TraceError,
    WorkloadParams,
};

/// A scratch path under the OS temp dir, unique per test process and tag.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ltp-v2-test-{}-{tag}.ltrace", std::process::id()))
}

/// The committed v1 golden file: em3d, 4 nodes, 3 iterations, default seed,
/// written by format version 1 before v2 existed. Must load forever.
fn golden_v1_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/em3d-4node-3iter.v1.ltrace")
}

#[test]
fn golden_v1_file_still_loads_replays_and_validates() {
    let path = golden_v1_path();

    // The buffered loader reads it...
    let golden = Trace::load(&path).expect("golden v1 file loads");
    assert_eq!(golden.name(), "em3d");
    let params = WorkloadParams::quick(4, 3);
    assert_eq!(golden.workload(), params);

    // ...its content is exactly what recording produces today...
    assert_eq!(golden, Trace::record(Benchmark::Em3d, &params));

    // ...the streaming opener validates and indexes it (this is what
    // `trace-info` runs)...
    let streaming = Arc::new(StreamingTrace::open(&path).expect("golden v1 validates"));
    assert_eq!(streaming.version(), TRACE_VERSION_V1);
    assert_eq!(streaming.total_ops(), golden.total_ops());
    assert_eq!(streaming.repeat_blocks(), 0, "v1 has no repeat blocks");

    // ...and both replay paths reproduce the synthetic run bit-exactly.
    let direct = ExperimentSpec::builder(Benchmark::Em3d)
        .policy_spec("ltp")
        .expect("builtin spec")
        .workload(params)
        .build()
        .run();
    let buffered = ExperimentSpec::replay(Arc::new(golden))
        .policy_spec("ltp")
        .expect("builtin spec")
        .build()
        .run();
    let streamed = ExperimentSpec::replay_streaming(streaming)
        .policy_spec("ltp")
        .expect("builtin spec")
        .build()
        .run();
    assert_eq!(buffered, direct, "v1 buffered replay == synthetic");
    assert_eq!(streamed, direct, "v1 streamed replay == synthetic");
}

#[test]
fn v1_to_v2_conversion_is_lossless() {
    let golden = Trace::load(golden_v1_path()).expect("golden v1 file loads");
    let mut v2 = Vec::new();
    golden.write_to(&mut v2).expect("re-encodes as v2");
    let back = Trace::read_from(&v2[..]).expect("v2 decodes");
    assert_eq!(back, golden, "v1 -> v2 -> ops is the identity");
    let mut v1 = Vec::new();
    golden
        .write_to_version(&mut v1, TRACE_VERSION_V1)
        .expect("re-encodes as v1");
    // The golden recording has only 3 iterations, so the ceiling is ~3x
    // (prologue + one body + repeat block vs three bodies).
    assert!(
        v2.len() < v1.len() / 2,
        "v2 must be far denser on em3d: v1 {} bytes, v2 {} bytes",
        v1.len(),
        v2.len()
    );
}

#[test]
fn every_benchmark_streams_bit_identically_with_bounded_memory() {
    // The acceptance criterion of the streaming engine, for all nine
    // kernels: synthetic run == buffered file replay == streamed file
    // replay, with per-node decoder memory bounded by the declared window.
    let params = WorkloadParams::quick(4, 2);
    for benchmark in Benchmark::ALL {
        let direct = ExperimentSpec::builder(benchmark)
            .policy_spec("ltp")
            .expect("builtin spec")
            .workload(params)
            .build()
            .run();

        let path = scratch(benchmark.name());
        let trace = Trace::record(benchmark, &params);
        trace.save(&path).expect("trace saves");

        let buffered = ExperimentSpec::replay(Arc::new(Trace::load(&path).expect("loads")))
            .policy_spec("ltp")
            .expect("builtin spec")
            .build()
            .run();
        let streaming = Arc::new(StreamingTrace::open(&path).expect("opens"));
        let streamed = ExperimentSpec::replay_streaming(Arc::clone(&streaming))
            .policy_spec("ltp")
            .expect("builtin spec")
            .build()
            .run();
        assert_eq!(buffered, direct, "{benchmark}: buffered replay differs");
        assert_eq!(streamed, direct, "{benchmark}: streamed replay differs");

        // Memory bound: drain each node's program directly and check the
        // high-water mark against the declared window (ring + one
        // in-flight repeat body => at most 2x the window; windowless
        // streams buffer nothing).
        for node in 0..streaming.nodes() {
            let mut program =
                StreamingTraceProgram::new(Arc::clone(&streaming), node).expect("program opens");
            let ops = collect_ops(&mut program);
            assert_eq!(
                ops,
                trace.streams()[usize::from(node)],
                "{benchmark} node {node}: streamed ops differ"
            );
            let window = program.window_ops();
            assert!(
                program.peak_buffered_ops() <= 2 * window,
                "{benchmark} node {node}: peak {} ops exceeds 2x window {window}",
                program.peak_buffered_ops()
            );
            assert!(
                window as u64 <= streaming.max_window(),
                "{benchmark} node {node}: window exceeds the file maximum"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn loop_compression_reaches_its_density_target() {
    // ROADMAP/acceptance target: <= 0.5 B/op on at least 5 of the 9
    // benchmarks at their scaled default iteration counts (the shape the
    // BENCH_trace_v2.json baseline records at 32 nodes).
    let params = WorkloadParams {
        nodes: 4,
        seed: 0x15CA_2000,
        iterations: None,
    };
    let mut dense = Vec::new();
    for benchmark in Benchmark::ALL {
        let trace = Trace::record(benchmark, &params);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).expect("encodes");
        let per_op = bytes.len() as f64 / trace.total_ops().max(1) as f64;
        if per_op <= 0.5 {
            dense.push((benchmark.name(), per_op));
        }
    }
    assert!(
        dense.len() >= 5,
        "only {} of 9 benchmarks reached <= 0.5 B/op: {dense:?}",
        dense.len()
    );
}

#[test]
fn random_traces_round_trip_every_decode_path() {
    // Fuzz-style: generate -> encode v2 -> decode buffered and streaming ->
    // bit-identical ops, across seeds and geometries.
    for seed in 0..6u64 {
        let params = WorkloadParams {
            nodes: 2 + (seed % 4) as u16,
            seed: 0xF00D + seed,
            iterations: None,
        };
        let trace = random_trace(&params, 700);
        let path = scratch(&format!("fuzz-{seed}"));
        trace.save(&path).expect("saves");

        let buffered = Trace::load(&path).expect("buffered decode");
        assert_eq!(buffered, trace, "seed {seed}: buffered ops differ");

        let streaming = Arc::new(StreamingTrace::open(&path).expect("streaming open"));
        assert_eq!(streaming.total_ops(), trace.total_ops());
        let mut programs = StreamingTrace::programs(&streaming).expect("programs open");
        for (node, program) in programs.iter_mut().enumerate() {
            assert_eq!(
                collect_ops(program.as_mut()),
                trace.streams()[node],
                "seed {seed} node {node}: streamed ops differ"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn random_traces_simulate_and_stream_identically() {
    // Generated workloads are not just encodable — they run. Buffered and
    // streamed replay of the same generated file report identically.
    let params = WorkloadParams {
        nodes: 4,
        seed: 0xBEEF,
        iterations: None,
    };
    let trace = random_trace(&params, 400);
    let path = scratch("fuzz-sim");
    trace.save(&path).expect("saves");
    let buffered = ExperimentSpec::replay(Arc::new(trace))
        .policy_spec("ltp")
        .expect("builtin spec")
        .build()
        .run();
    let streamed =
        ExperimentSpec::replay_streaming(Arc::new(StreamingTrace::open(&path).expect("opens")))
            .policy_spec("ltp")
            .expect("builtin spec")
            .build()
            .run();
    std::fs::remove_file(&path).ok();
    assert_eq!(buffered.benchmark, "random");
    assert_eq!(streamed, buffered, "streamed random replay differs");
}

#[test]
fn corrupt_and_truncated_v2_files_are_rejected_by_both_readers() {
    let trace = random_trace(&WorkloadParams::quick(3, 1), 300);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("encodes");
    assert_eq!(bytes[7], TRACE_VERSION, "fixture is a v2 file");
    let path = scratch("corrupt");

    // Every single-byte truncation point either still fails cleanly —
    // never panics — and full-prefix truncations at interesting boundaries
    // are all Corrupt. (Sampling strides keeps the test fast.)
    for cut in (9..bytes.len()).step_by(41).chain([bytes.len() - 1]) {
        let err = Trace::read_from(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceError::Corrupt(_)),
            "cut at {cut}: unexpected {err}"
        );
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = StreamingTrace::open(&path).unwrap_err();
        assert!(
            matches!(err, TraceError::Corrupt(_)),
            "streaming cut at {cut}: unexpected {err}"
        );
    }

    // Every sampled bit flip in the body is caught by the checksum (or a
    // structural check) in both readers.
    for at in (8..bytes.len() - 8).step_by(97) {
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x10;
        let err = Trace::read_from(&flipped[..]).unwrap_err();
        assert!(
            matches!(err, TraceError::Corrupt(_)),
            "flip at {at}: unexpected {err}"
        );
        std::fs::write(&path, &flipped).unwrap();
        let err = StreamingTrace::open(&path).unwrap_err();
        assert!(
            matches!(err, TraceError::Corrupt(_)),
            "streaming flip at {at}: unexpected {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_byte_gates_both_readers() {
    let trace = random_trace(&WorkloadParams::quick(2, 1), 100);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("encodes");
    let path = scratch("version-gate");
    for bad in [0u8, 3, 9, 255] {
        let mut tampered = bytes.clone();
        tampered[7] = bad;
        assert!(matches!(
            Trace::read_from(&tampered[..]),
            Err(TraceError::UnsupportedVersion(v)) if v == bad
        ));
        std::fs::write(&path, &tampered).unwrap();
        assert!(matches!(
            StreamingTrace::open(&path),
            Err(TraceError::UnsupportedVersion(v)) if v == bad
        ));
    }
    std::fs::remove_file(&path).ok();
}
