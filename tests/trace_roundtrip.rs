//! Trace record/replay fidelity: for every benchmark of the suite,
//! `record` → save → load → replay produces a `RunReport` bit-identical to
//! the direct synthetic run, through the file format and through the sweep
//! driver alike.

use std::sync::Arc;

use ltp::core::PolicyRegistry;
use ltp::system::{ExperimentSpec, SweepSpec};
use ltp::workloads::{collect_ops, Benchmark, Trace, TraceError, WorkloadParams, WorkloadSource};

/// A scratch path under the OS temp dir, unique per test process and tag.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ltp-test-{}-{tag}.ltrace", std::process::id()))
}

#[test]
fn every_benchmark_replays_bit_identically_through_a_file() {
    // The acceptance criterion of the trace subsystem: capture once,
    // replay anywhere, lose nothing — for all nine kernels, through disk.
    let params = WorkloadParams::quick(4, 2);
    for benchmark in Benchmark::ALL {
        let direct = ExperimentSpec::builder(benchmark)
            .policy_spec("ltp")
            .expect("builtin spec")
            .workload(params)
            .build()
            .run();

        let path = scratch(benchmark.name());
        Trace::record(benchmark, &params)
            .save(&path)
            .expect("trace saves");
        let loaded = Arc::new(Trace::load(&path).expect("trace loads"));
        std::fs::remove_file(&path).ok();

        let replayed = ExperimentSpec::replay(loaded)
            .policy_spec("ltp")
            .expect("builtin spec")
            .build()
            .run();
        assert_eq!(
            replayed, direct,
            "{benchmark}: replay must be bit-identical"
        );
    }
}

#[test]
fn recorded_streams_survive_serialization_exactly() {
    let params = WorkloadParams::quick(3, 2);
    for benchmark in [Benchmark::Barnes, Benchmark::Appbt, Benchmark::Raytrace] {
        let trace = Trace::record(benchmark, &params);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).expect("encodes");
        let back = Trace::read_from(&bytes[..]).expect("decodes");
        assert_eq!(back, trace, "{benchmark}");
        // And the replay programs emit exactly the recorded ops.
        let mut programs = back.into_programs();
        for (node, program) in programs.iter_mut().enumerate() {
            assert_eq!(
                collect_ops(program.as_mut()),
                trace.streams()[node],
                "{benchmark} node {node}"
            );
        }
    }
}

#[test]
fn compression_beats_a_naive_fixed_width_encoding() {
    // Varint + delta encoding is the point of the format: the repetitive
    // stencil streams must land far below the ~13 B/op a packed
    // opcode+pc+block encoding would need.
    let trace = Trace::record(Benchmark::Tomcatv, &WorkloadParams::quick(4, 4));
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("encodes");
    let per_op = bytes.len() as f64 / trace.total_ops() as f64;
    assert!(
        per_op < 6.0,
        "expected < 6 B/op from delta+varint coding, got {per_op:.2}"
    );
}

#[test]
fn mixed_sweep_replays_match_synthetic_rows() {
    let params = WorkloadParams::quick(4, 2);
    let registry = PolicyRegistry::with_builtins();
    let traces: Vec<Arc<Trace>> = [Benchmark::Em3d, Benchmark::Unstructured]
        .into_iter()
        .map(|b| Arc::new(Trace::record(b, &params)))
        .collect();

    let mut sweep = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Unstructured])
        .policy_specs(&registry, &["base", "ltp"])
        .expect("builtin specs")
        .geometry(params);
    for trace in &traces {
        sweep = sweep.trace(Arc::clone(trace));
    }
    let reports = sweep.collect();
    assert_eq!(reports.len(), 8);
    // Row-major order: synthetic em3d, synthetic unstructured, then the
    // two trace sources — each trace row equals its synthetic twin.
    for (synthetic, replayed) in (0..4).zip(4..8) {
        assert_eq!(
            reports[replayed], reports[synthetic],
            "trace row {replayed} vs synthetic row {synthetic}"
        );
    }
}

#[test]
fn replay_works_under_every_policy() {
    let params = WorkloadParams::quick(4, 2);
    let trace = Arc::new(Trace::record(Benchmark::Moldyn, &params));
    for spec in ["base", "dsi", "last-pc", "ltp", "ltp-global"] {
        let direct = ExperimentSpec::builder(Benchmark::Moldyn)
            .policy_spec(spec)
            .expect("builtin spec")
            .workload(params)
            .build()
            .run();
        let replayed = ExperimentSpec::replay(Arc::clone(&trace))
            .policy_spec(spec)
            .expect("builtin spec")
            .build()
            .run();
        assert_eq!(replayed, direct, "{spec}");
    }
}

#[test]
fn malformed_files_are_rejected_with_precise_errors() {
    let params = WorkloadParams::quick(2, 1);
    let trace = Trace::record(Benchmark::Ocean, &params);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("encodes");

    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(matches!(
        Trace::read_from(&wrong[..]),
        Err(TraceError::BadMagic)
    ));

    // Future version.
    let mut future = bytes.clone();
    future[7] = 42;
    assert!(matches!(
        Trace::read_from(&future[..]),
        Err(TraceError::UnsupportedVersion(42))
    ));

    // Bit flip anywhere in the body trips the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 1;
    assert!(matches!(
        Trace::read_from(&flipped[..]),
        Err(TraceError::Corrupt(_))
    ));

    // Truncation is corruption too.
    assert!(matches!(
        Trace::read_from(&bytes[..bytes.len() / 2]),
        Err(TraceError::Corrupt(_))
    ));

    // A missing file surfaces as I/O.
    assert!(matches!(
        Trace::load("/nonexistent/ltp-no-such-trace.ltrace"),
        Err(TraceError::Io(_))
    ));
}

#[test]
fn trace_report_carries_the_recorded_workload_name() {
    let params = WorkloadParams::quick(4, 1);
    let trace = Arc::new(Trace::record(Benchmark::Dsmc, &params));
    let report = ExperimentSpec::replay(trace)
        .policy_spec("base")
        .expect("builtin spec")
        .build()
        .run();
    assert_eq!(report.benchmark, "dsmc");
    assert_eq!(report.workload, params);
    assert!(report.to_json().contains("\"benchmark\":\"dsmc\""));
}

#[test]
fn sources_mix_policies_and_geometries_without_interference() {
    // One trace under two policies: the trace streams are shared (Arc),
    // and per-policy results differ while per-policy replays agree.
    let params = WorkloadParams::quick(4, 3);
    let trace = Arc::new(Trace::record(Benchmark::Tomcatv, &params));
    let registry = PolicyRegistry::with_builtins();
    let reports = SweepSpec::new()
        .source(WorkloadSource::Trace(Arc::clone(&trace)))
        .policy_specs(&registry, &["base", "ltp"])
        .expect("builtin specs")
        .collect();
    assert_eq!(reports.len(), 2);
    assert_ne!(
        reports[0].metrics.exec_cycles, reports[1].metrics.exec_cycles,
        "policies actually differ on the replayed workload"
    );
}
