//! Acceptance tests for the coherence sanitizer and the quiescence checker.
//!
//! * **Clean streams** — every benchmark, under the paper's LTP policy,
//!   runs to completion with the strict sanitizer attached: one reported
//!   violation panics the run. This holds across directory organizations
//!   and shard counts (the checker consumes the *merged* stream, so its
//!   section must also be bit-identical across `--shards`).
//! * **Quiescence** — a finished machine's ground state (every directory
//!   record and cached line) satisfies the invariant catalog, and the
//!   checker actually rejects corrupted ground state.

use ltp::core::{PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::{DirectoryKind, Line, SystemConfig};
use ltp::sim::{Cycle, StopReason};
use ltp::system::checker::{quiescence_violations, MachineView};
use ltp::system::{ExperimentSpec, Machine};
use ltp::workloads::{Benchmark, WorkloadParams};

fn checked_spec(benchmark: Benchmark, nodes: u16, dir: DirectoryKind) -> ExperimentSpec {
    ExperimentSpec::builder(benchmark)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(nodes)
        .iterations(2)
        .directory(dir)
        .probe_spec("check:strict")
        .expect("builtin probe")
        .build()
}

#[test]
fn strict_sanitizer_is_silent_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        // check:strict panics at the first violation, so completion is the
        // assertion; also require the checker actually saw traffic.
        let report = checked_spec(benchmark, 8, DirectoryKind::Full).run();
        let section = report
            .sections
            .iter()
            .find(|s| s.name == "check:strict")
            .unwrap_or_else(|| panic!("{benchmark}: check section missing"));
        let json = section.data.render();
        assert!(json.contains("\"violations\":0"), "{benchmark}: {json}");
        assert!(
            !json.contains("\"events\":0"),
            "{benchmark}: no events seen"
        );
    }
}

#[test]
fn sanitizer_is_silent_across_directory_organizations() {
    for dir in [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 4 },
        DirectoryKind::LimitedPtr { pointers: 2 },
        DirectoryKind::Sparse { entries: 2 },
    ] {
        let report = checked_spec(Benchmark::Em3d, 8, dir).run();
        let section = report
            .sections
            .iter()
            .find(|s| s.name == "check:strict")
            .expect("check section");
        assert!(
            section.data.render().contains("\"violations\":0"),
            "{dir}: {}",
            section.data.render()
        );
    }
}

#[test]
fn strict_sanitizer_is_silent_on_every_benchmark_under_eviction_pressure() {
    // A 2-entry sparse directory cache thrashes on every benchmark, so the
    // sanitizer replays constant eviction/invalidation/ack interleavings —
    // including evictions racing self-invalidations. Strict mode panics on
    // the first divergence, so completion is the assertion; additionally
    // require that real evictions happened, or the pressure is imaginary
    // (in aggregate — benchmarks with tiny per-home footprints, like
    // raytrace, legitimately fit in 2 entries).
    let mut evictions = 0;
    for benchmark in Benchmark::ALL {
        let report = checked_spec(benchmark, 8, DirectoryKind::Sparse { entries: 2 }).run();
        let section = report
            .sections
            .iter()
            .find(|s| s.name == "check:strict")
            .unwrap_or_else(|| panic!("{benchmark}: check section missing"));
        let json = section.data.render();
        assert!(json.contains("\"violations\":0"), "{benchmark}: {json}");
        evictions += report.metrics.dir_evictions;
    }
    assert!(evictions > 0, "no benchmark pressured the 2-entry cache");
}

#[test]
fn checker_section_is_bit_identical_across_shard_counts() {
    let section_with_shards = |shards: usize| {
        let report = ExperimentSpec::builder(Benchmark::Moldyn)
            .policy_spec("ltp")
            .expect("builtin spec")
            .nodes(8)
            .iterations(2)
            .shards(shards)
            .probe_spec("check")
            .expect("builtin probe")
            .build()
            .run();
        report
            .sections
            .iter()
            .find(|s| s.name == "check")
            .expect("check section")
            .data
            .render()
    };
    let serial = section_with_shards(1);
    assert!(serial.contains("\"violations\":0"), "{serial}");
    assert_eq!(serial, section_with_shards(3));
    assert_eq!(serial, section_with_shards(4));
}

#[test]
fn quiescent_ground_state_satisfies_the_catalog() {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    for dir in [
        DirectoryKind::Full,
        DirectoryKind::LimitedPtr { pointers: 1 },
        DirectoryKind::Sparse { entries: 2 },
    ] {
        let params = WorkloadParams::quick(8, 2);
        let cfg = SystemConfig::builder()
            .nodes(params.nodes)
            .directory(dir)
            .build()
            .expect("valid");
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..params.nodes)
            .map(|_| factory.build(PredictorConfig::default()))
            .collect();
        let programs = Benchmark::Unstructured.programs(&params);
        let mut machine = Machine::new(cfg, policies, programs);
        let summary = machine.run(Cycle::new(200_000_000));
        assert_ne!(summary.stop, StopReason::HorizonReached, "deadlock");
        assert!(machine.all_finished());
        let view = machine.view();
        let violations = quiescence_violations(&view);
        assert!(violations.is_empty(), "{dir}: {violations:?}");
    }
}

#[test]
fn quiescence_checker_rejects_corrupted_ground_state() {
    use ltp::core::{BlockId, NodeId};

    // An exclusive line the directory has no record of.
    let mut view = MachineView {
        nodes: 4,
        directory: DirectoryKind::Full,
        ..MachineView::default()
    };
    view.cache_lines.push((
        NodeId::new(1),
        BlockId::new(7),
        Line {
            exclusive: true,
            dirty: true,
            token: 3,
        },
    ));
    let violations = quiescence_violations(&view);
    assert!(
        violations.iter().any(|v| v.invariant == "agreement"),
        "{violations:?}"
    );

    // Work still queued at "quiescence".
    let busy = MachineView {
        nodes: 4,
        directory: DirectoryKind::Full,
        engine_backlog: 2,
        cache_pending: 1,
        ..MachineView::default()
    };
    let violations = quiescence_violations(&busy);
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.invariant == "conservation")
            .count(),
        2,
        "{violations:?}"
    );
}
