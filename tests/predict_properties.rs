//! Property tests for the predictor zoo, driven by [`SimRng`] random
//! streams.
//!
//! Each harness respects the machine's policy contract — a node holds a
//! block between a filling touch and an invalidation (external or its own
//! fire), and verdicts arrive FIFO per fired prediction — while randomizing
//! everything else: blocks, PCs, and the touch/invalidate/verify
//! interleaving. Within that contract the properties must hold for *any*
//! stream:
//!
//! * TAGE with deliberately tiny tables survives arbitrary tag aliasing —
//!   colliding blocks steal each other's entries but never corrupt state
//!   or panic;
//! * perceptron weights saturate at ±(2^(bits−1) − 1) under adversarial
//!   training — they clamp, never wrap;
//! * the oracle, primed with ground truth extracted from a baseline
//!   replay, achieves 100% accuracy and 100% coverage by construction —
//!   on the synthetic benchmarks *and* on random generated workloads.

use ltp::core::{
    PerceptronPredictor, PolicyRegistry, PredictStats, PredictorConfig, SelfInvalidationPolicy,
    TagePredictor, VerifyOutcome,
};
use ltp::sim::SimRng;
use ltp::workloads::{
    ground_truth, random_trace, replay, Benchmark, WorkloadParams, WorkloadSource,
};
use std::collections::HashMap;

use ltp::core::{BlockId, FillInfo, FillKind, Pc, Touch};

/// Drives `policy` through `steps` random contract-respecting events.
/// Calls `check` after every step.
fn storm(
    policy: &mut dyn SelfInvalidationPolicy,
    rng: &mut SimRng,
    steps: usize,
    blocks: u64,
    mut check: impl FnMut(&mut dyn SelfInvalidationPolicy),
) {
    // Per block: (held, pending verdict count).
    let mut state: HashMap<u64, (bool, u32)> = HashMap::new();
    for _ in 0..steps {
        let b = rng.next_u64() % blocks;
        let (held, pending) = state.entry(b).or_insert((false, 0));
        match rng.next_u64() % 4 {
            // Touch (twice as likely as the others): fills when not held.
            0 | 1 => {
                let filling = !*held;
                let touch = Touch {
                    block: BlockId::new(b),
                    pc: Pc::new((rng.next_u64() % 8) as u32 * 4 + 0x100),
                    is_write: rng.next_u64() % 2 == 0,
                    exclusive: rng.next_u64() % 2 == 0,
                    fill: filling.then_some(FillInfo {
                        kind: if rng.next_u64() % 4 == 0 {
                            FillKind::Upgrade
                        } else {
                            FillKind::Demand
                        },
                        dir_version: (rng.next_u64() % 16) as u32,
                        migratory_upgrade: rng.next_u64() % 8 == 0,
                    }),
                };
                *held = true;
                if policy.on_touch(touch) {
                    *held = false;
                    *pending += 1;
                }
            }
            // External invalidation of a held copy.
            2 => {
                if *held {
                    *held = false;
                    policy.on_invalidation(BlockId::new(b));
                }
            }
            // Directory verdict for an outstanding fire (FIFO per block).
            _ => {
                if *pending > 0 {
                    *pending -= 1;
                    let outcome = if rng.next_u64() % 2 == 0 {
                        VerifyOutcome::Correct
                    } else {
                        VerifyOutcome::Premature
                    };
                    policy.on_verification(BlockId::new(b), outcome);
                }
            }
        }
        check(policy);
    }
}

#[test]
fn tage_tag_aliasing_never_panics_or_corrupts() {
    // Tables far smaller than the block population force constant aliasing.
    for (seed, size) in [(1u64, 2usize), (2, 3), (3, 4), (4, 8), (5, 16)] {
        for tables in [1usize, 3, 8] {
            let mut tage = TagePredictor::new(tables, size, PredictorConfig::default());
            let mut rng = SimRng::from_seed(0xA11A5 ^ seed);
            let cap = (tables * size) as u64;
            storm(&mut tage, &mut rng, 4000, 97, |p| {
                let storage = p.storage();
                assert!(
                    storage.live_entries <= cap,
                    "live entries {} exceed capacity {cap}",
                    storage.live_entries
                );
            });
        }
    }
}

#[test]
fn perceptron_weights_saturate_not_wrap() {
    for (seed, bits) in [(11u64, 1u32), (12, 2), (13, 3), (14, 8)] {
        let max = (1i32 << (bits - 1)) - 1;
        let mut p = PerceptronPredictor::new(
            bits,
            3,
            16, // tiny tables: every row is trained constantly
            2,  // low threshold: fires often, gets punished often
            PredictorConfig::default(),
        );
        let mut rng = SimRng::from_seed(0x5A7 ^ seed);
        // `storm` can't call the concrete accessor through the trait
        // object, so bound-check on a cadence outside it.
        for _ in 0..40 {
            storm(&mut p, &mut rng, 100, 23, |_| {});
            assert!(
                p.max_abs_weight() <= max,
                "{bits}-bit weights exceeded ±{max}: {}",
                p.max_abs_weight()
            );
        }
    }
}

fn assert_oracle_perfect(source: WorkloadSource, params: &WorkloadParams, label: &str) {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("oracle").expect("builtin spec");
    let params = source.effective_params(*params);
    let truth = ground_truth(source.programs(&params).expect("workload builds"));
    let mut policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..params.nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    for (policy, node_truth) in policies.iter_mut().zip(&truth) {
        policy.prime_last_touches(node_truth);
    }
    let report = replay(
        source.programs(&params).expect("workload builds"),
        &mut policies,
        false,
    );
    let merged = report
        .stats
        .iter()
        .fold(PredictStats::default(), |mut acc, s| {
            acc.merge(s);
            acc
        });
    assert_eq!(merged.premature, 0, "{label}: an oracle fire was premature");
    assert_eq!(
        merged.not_predicted, 0,
        "{label}: the oracle missed a last touch"
    );
    let marked: usize = truth.iter().map(Vec::len).sum();
    assert_eq!(
        merged.fires as usize, marked,
        "{label}: fire count vs marked ground truth"
    );
    if marked > 0 {
        assert_eq!(merged.accuracy_pct(), Some(100.0), "{label}");
        assert_eq!(merged.coverage_pct(), Some(100.0), "{label}");
    }
}

#[test]
fn oracle_is_perfect_on_the_suite() {
    let params = WorkloadParams::quick(4, 2);
    for bench in Benchmark::ALL {
        assert_oracle_perfect(WorkloadSource::from(bench), &params, bench.name());
    }
}

#[test]
fn oracle_is_perfect_on_random_workloads() {
    // Random traces include locks, flags, and barriers in arbitrary valid
    // interleavings — ground truth must survive all of them.
    for seed in [0x0DD5EED1u64, 0x0DD5EED2, 0x0DD5EED3] {
        let params = WorkloadParams {
            nodes: 4,
            seed,
            iterations: None,
        };
        let trace = random_trace(&params, 4096);
        assert_oracle_perfect(
            WorkloadSource::from(trace),
            &params,
            &format!("random_trace(seed={seed:#x})"),
        );
    }
}
