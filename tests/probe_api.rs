//! Acceptance tests for the probe/observer API redesign.
//!
//! * **Golden parity** — the core metrics flowing through the new
//!   `CoreMetricsProbe` path must be byte-identical (whole-report JSON) to
//!   the pre-probe simulator, pinned by a committed golden file for every
//!   benchmark at 32 nodes.
//! * **Record tee** — a live run teed through the `record:` probe must
//!   produce a trace identical to static recording, and replaying it must
//!   reproduce the source run bit-for-bit, on all nine benchmarks.
//! * **Probe registry conformance** — spec strings resolve, unknown specs
//!   fail with clean errors, and out-of-tree probes register and run.
//! * **Scheduling** — longest-job-first dispatch never changes reports or
//!   their order.

use std::sync::Arc;

use ltp::core::JsonObject;
use ltp::system::{
    ExperimentSpec, MetricsSection, Probe, ProbeCtx, ProbeRegistry, ProbeSpecError, RunReport,
    SimEvent, SweepSpec,
};
use ltp::workloads::{Benchmark, EstimateSource, Trace, WorkloadParams};

fn golden_spec(benchmark: Benchmark) -> ExperimentSpec {
    // Must match how tests/data/golden_core_32.jsonl was generated (by the
    // pre-probe binary): `ltp run -b all -p ltp -n 32 -i 4 --json`.
    ExperimentSpec::builder(benchmark)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(32)
        .iterations(4)
        .build()
}

#[test]
fn core_metrics_json_matches_pre_probe_golden_for_every_benchmark() {
    let golden = include_str!("data/golden_core_32.jsonl");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), Benchmark::ALL.len());
    for (benchmark, expected) in Benchmark::ALL.into_iter().zip(lines) {
        let json = golden_spec(benchmark).run().to_json();
        assert_eq!(
            json, expected,
            "{benchmark}: core metrics drifted from the pre-probe report"
        );
    }
}

#[test]
fn record_tee_replays_bit_identically_on_all_benchmarks() {
    let params = WorkloadParams::quick(4, 2);
    for benchmark in Benchmark::ALL {
        let path = std::env::temp_dir().join(format!(
            "ltp-tee-{}-{}.ltrace",
            benchmark.name(),
            std::process::id()
        ));
        let spec = |probes: bool| {
            let builder = ExperimentSpec::builder(benchmark)
                .policy_spec("ltp")
                .expect("builtin spec")
                .workload(params);
            if probes {
                builder
                    .probe_spec(&format!("record:{}", path.display()))
                    .expect("record spec")
            } else {
                builder
            }
            .build()
        };
        let recorded_run = spec(true).run();
        let direct_run = spec(false).run();
        assert_eq!(
            recorded_run, direct_run,
            "{benchmark}: the recorder probe must not perturb the run"
        );

        // The teed trace is identical to a static recording…
        let teed = Trace::load(&path).expect("teed trace readable");
        assert_eq!(
            teed,
            Trace::record(benchmark, &params),
            "{benchmark}: live tee differs from static recording"
        );
        // …and replaying it reproduces the source run bit-for-bit.
        let replayed = ExperimentSpec::replay(Arc::new(teed))
            .policy_spec("ltp")
            .expect("builtin spec")
            .build()
            .run();
        assert_eq!(
            replayed.metrics, direct_run.metrics,
            "{benchmark}: replay of the teed trace diverged"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn probe_sections_flow_end_to_end_into_reports_and_json() {
    let report = ExperimentSpec::builder(Benchmark::Em3d)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(4)
        .iterations(4)
        .probe_spec("hist:self-inv-lead")
        .expect("hist spec")
        .probe_spec("per-node")
        .expect("per-node spec")
        .build()
        .run();
    assert_eq!(report.sections.len(), 2);
    assert_eq!(report.sections[0].name, "hist:self-inv-lead");
    assert_eq!(report.sections[1].name, "per-node");
    let json = report.to_json();
    assert!(json.contains("\"sections\":{"), "{json}");
    assert!(json.contains("\"hist:self-inv-lead\":{"), "{json}");
    assert!(json.contains("\"per-node\":[{\"node\":0,"), "{json}");
    // The per-node rows sum back to the flat metrics.
    let rows = &report.sections[1].data;
    let rendered = rows.render();
    assert_eq!(rendered.matches("\"node\":").count(), 4, "{rendered}");
    // em3d predicts: the histogram actually collected samples.
    assert!(report.metrics.predicted > 0);
    assert!(
        report.sections[0].data.render().contains("\"samples\":"),
        "histogram section has sample counts"
    );
}

#[test]
fn probes_never_change_the_core_metrics() {
    let plain = ExperimentSpec::builder(Benchmark::Moldyn)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(4)
        .iterations(3)
        .build()
        .run();
    let probed = ExperimentSpec::builder(Benchmark::Moldyn)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(4)
        .iterations(3)
        .probe_spec("per-node")
        .expect("spec")
        .probe_spec("hist:self-inv-lead")
        .expect("spec")
        .build()
        .run();
    assert_eq!(plain.metrics, probed.metrics);
    assert_eq!(plain.events_handled, probed.events_handled);
}

#[test]
fn unknown_probe_specs_fail_cleanly() {
    let registry = ProbeRegistry::with_builtins();
    let err = registry.parse("flamegraph").unwrap_err();
    let ProbeSpecError::UnknownProbe { name, known } = &err else {
        panic!("wrong error: {err}");
    };
    assert_eq!(name, "flamegraph");
    assert!(known.iter().any(|k| k == "per-node"), "{known:?}");
    let msg = err.to_string();
    assert!(msg.contains("unknown probe"), "{msg}");
    assert!(msg.contains("record"), "lists the known probes: {msg}");
}

#[test]
fn out_of_tree_probes_register_and_sweep() {
    // The acceptance scenario: a probe defined here (a *consumer* crate),
    // registered by spec string, swept over two benchmarks.
    #[derive(Debug, Default)]
    struct MsgCounter {
        sent: u64,
        delivered: u64,
    }
    impl Probe for MsgCounter {
        fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
            match event {
                SimEvent::MessageSent { .. } => self.sent += 1,
                SimEvent::MessageDelivered { .. } => self.delivered += 1,
                _ => {}
            }
        }
        fn finish(self: Box<Self>) -> Option<MetricsSection> {
            Some(MetricsSection::new(
                "msg-counter",
                JsonObject::new()
                    .field("sent", self.sent)
                    .field("delivered", self.delivered)
                    .build(),
            ))
        }
    }

    let mut registry = ProbeRegistry::with_builtins();
    registry
        .register("msg-counter", "counts protocol messages", |_| {
            Ok(Arc::new(ltp::system::FnProbeFactory::new(
                "msg-counter",
                || Box::new(MsgCounter::default()),
            )))
        })
        .expect("name is free");

    let policy_registry = ltp::core::PolicyRegistry::with_builtins();
    let reports = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
        .policy_specs(&policy_registry, &["base"])
        .expect("builtin specs")
        .quick_geometry(4, 2)
        .probe_spec(&registry, "msg-counter")
        .expect("custom probe resolves")
        .collect();
    assert_eq!(reports.len(), 2);
    for report in &reports {
        let section = &report.sections[0];
        assert_eq!(section.name, "msg-counter");
        let json = section.data.render();
        assert!(json.starts_with("{\"sent\":"), "{json}");
        // Every message sent is eventually delivered (plus reinjected
        // shelved requests re-arrive without a fresh send).
        assert!(report.metrics.messages > 0);
    }
}

#[test]
fn schedule_orders_longest_first_without_changing_reports() {
    let registry = ltp::core::PolicyRegistry::with_builtins();
    // dsmc and raytrace are the length extremes of the suite at equal
    // iteration counts; add a recorded trace so both estimate sources
    // appear.
    let trace = Arc::new(Trace::record(Benchmark::Em3d, &WorkloadParams::quick(4, 6)));
    let sweep = SweepSpec::new()
        .benchmarks([Benchmark::Raytrace, Benchmark::Dsmc])
        .trace(Arc::clone(&trace))
        .policy_specs(&registry, &["ltp"])
        .expect("builtin spec")
        .quick_geometry(4, 3);

    let schedule = sweep.schedule();
    assert_eq!(schedule.len(), 3);
    // Every run of this sweep has a known estimate…
    let ops: Vec<u64> = schedule
        .iter()
        .map(|(_, e)| e.expect("known").ops)
        .collect();
    assert!(ops.windows(2).all(|w| w[0] >= w[1]), "descending: {ops:?}");
    // …with the right provenance per source kind.
    for (seq, estimate) in &schedule {
        let estimate = estimate.expect("known");
        let expected = if *seq == 2 {
            EstimateSource::TraceHeader // the trace is the third source
        } else {
            EstimateSource::Script
        };
        assert_eq!(estimate.source, expected, "run {seq}");
    }

    // Scheduling is an execution-order concern only: serial and parallel
    // sweeps agree, in cross-product order.
    let serial: Vec<RunReport> = sweep.clone().serial().collect();
    let parallel = sweep.threads(4).collect();
    assert_eq!(serial, parallel);
    assert_eq!(serial[0].benchmark, "raytrace");
    assert_eq!(serial[2].benchmark, "em3d");
}
