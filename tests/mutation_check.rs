//! Mutation self-test for the coherence sanitizer (`--features mutate`).
//!
//! The sanitizer's value rests on negative evidence: a checker that never
//! fires might be watching nothing. `ltp_dsm::mutation` plants five known
//! protocol bugs behind runtime switches; each test here arms one, runs a
//! real workload with the (non-strict) sanitizer attached, and asserts the
//! mutant is reported — with evidence lines — while the unmutated control
//! run stays silent.
//!
//! The machine is driven directly rather than through `ExperimentSpec`:
//! `DropInvAck` deadlocks its victim transaction, so the run must be
//! allowed to stop without `all_finished()` holding.

#![cfg(feature = "mutate")]

use std::sync::Mutex;

use ltp::core::{JsonValue, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::mutation::{set_active, Mutant};
use ltp::dsm::{DirectoryKind, SystemConfig};
use ltp::sim::Cycle;
use ltp::system::{CoherenceChecker, Machine};
use ltp::workloads::{Benchmark, WorkloadParams};

/// The mutant switch is process-global; tests must not interleave.
static MUTANT_LOCK: Mutex<()> = Mutex::new(());

/// Runs `benchmark` at 8 nodes with `mutant` armed and the sanitizer
/// attached; returns the checker section's (violations, invariant names,
/// evidence lines).
fn checked_run(
    mutant: Option<Mutant>,
    benchmark: Benchmark,
    dir: DirectoryKind,
    iterations: u32,
) -> (u64, Vec<String>, Vec<String>) {
    let params = WorkloadParams::quick(8, iterations);
    let cfg = SystemConfig::builder()
        .nodes(params.nodes)
        .directory(dir)
        .build()
        .expect("valid config");
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..params.nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let programs = benchmark.programs(&params);
    let mut machine = Machine::new(cfg, policies, programs);
    machine.attach_probe(Box::new(CoherenceChecker::new(params.nodes, dir, false)));

    set_active(mutant);
    machine.run(Cycle::new(200_000_000));
    set_active(None);

    let (_, sections) = machine.finish();
    let section = sections
        .into_iter()
        .find(|s| s.name == "check")
        .expect("checker section present");
    let JsonValue::Object(fields) = section.data else {
        panic!("checker section is not an object");
    };
    let mut violations = None;
    let mut invariants = Vec::new();
    let mut first = Vec::new();
    for (k, v) in fields {
        match (k.as_str(), v) {
            ("violations", JsonValue::U64(n)) => violations = Some(n),
            ("invariants", JsonValue::Object(by)) => {
                invariants = by.into_iter().map(|(name, _)| name).collect();
            }
            ("first", JsonValue::Array(lines)) => {
                first = lines
                    .into_iter()
                    .filter_map(|l| match l {
                        JsonValue::Str(s) => Some(s),
                        _ => None,
                    })
                    .collect();
            }
            _ => {}
        }
    }
    (violations.expect("violations field"), invariants, first)
}

/// Asserts `mutant` trips the checker (and names `invariant` among the
/// violated rows), then that the identical unmutated run is silent — the
/// flag is attributable to the planted bug, not to the configuration.
fn assert_flagged(
    mutant: Mutant,
    invariant: &str,
    benchmark: Benchmark,
    dir: DirectoryKind,
    iterations: u32,
) {
    let _guard = MUTANT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (violations, invariants, first) = checked_run(Some(mutant), benchmark, dir, iterations);
    assert!(
        violations > 0,
        "{mutant:?} went undetected ({benchmark}, {dir})"
    );
    assert!(
        invariants.iter().any(|i| i == invariant),
        "{mutant:?}: expected a `{invariant}` violation, got {invariants:?}"
    );
    assert!(!first.is_empty(), "{mutant:?}: no evidence recorded");

    let (clean, _, first) = checked_run(None, benchmark, dir, iterations);
    assert_eq!(clean, 0, "control run not silent: {first:?}");
}

#[test]
fn unmutated_control_is_silent() {
    let _guard = MUTANT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (violations, _, first) = checked_run(None, Benchmark::Moldyn, DirectoryKind::Full, 2);
    assert_eq!(violations, 0, "{first:?}");
}

#[test]
fn drop_inv_ack_is_flagged() {
    // The home waits forever for the swallowed ack: the transaction (and
    // its requester) deadlock, surfacing as unresolved conservation debts.
    assert_flagged(
        Mutant::DropInvAck,
        "conservation",
        Benchmark::Moldyn,
        DirectoryKind::Full,
        2,
    );
}

#[test]
fn skip_fill_verify_is_flagged() {
    // A verdict rode the fill but the node never surfaced it to its
    // policy: the §4 verification mask and the predictor silently diverge.
    assert_flagged(
        Mutant::SkipFillVerify,
        "mask",
        Benchmark::Barnes,
        DirectoryKind::Full,
        4,
    );
}

#[test]
fn widen_coarse_decode_is_flagged() {
    // The widened decode invalidates a neighbor cluster the shadow's
    // spec-derived sharer set does not contain.
    assert_flagged(
        Mutant::WidenCoarseDecode,
        "shadow",
        Benchmark::Moldyn,
        DirectoryKind::Coarse { cluster: 2 },
        2,
    );
}

#[test]
fn skip_eviction_inv_is_flagged() {
    // The sparse directory frees the victim entry without invalidating its
    // holders: the shadow predicted an eviction invalidation round that
    // never appears on the wire, and the stale copies later collide with
    // the home's idle record.
    assert_flagged(
        Mutant::SkipEvictionInv,
        "shadow",
        Benchmark::Moldyn,
        DirectoryKind::Sparse { entries: 2 },
        2,
    );
}

#[test]
fn reorder_arrival_is_flagged() {
    // Same-cycle deliveries to one node must pop in source order — the
    // property the sharded boundary merge (and hence `--shards`
    // bit-identity) is built on.
    assert_flagged(
        Mutant::ReorderArrival,
        "determinism",
        Benchmark::Ocean,
        DirectoryKind::Full,
        2,
    );
}
