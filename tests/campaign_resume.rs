//! Process-level campaign resume: SIGKILL the `ltp campaign` CLI
//! mid-flight, resume it, and require the final store — manifest,
//! aggregate, and every generated report artifact — to be byte-identical
//! to an uninterrupted campaign's.
//!
//! The thread-level abort path (a panicking worker inside one process) is
//! covered by the `ltp-system` unit tests; this test kills the whole
//! process so nothing gets to unwind, which is the crash the fsync'd
//! checkpoint discipline exists for.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The campaign under test: the full suite × {base, ltp} at one small
/// geometry, serial (`-j 1`) so checkpoints land one at a time and the
/// kill window is wide.
const CAMPAIGN_ARGS: &[&str] = &[
    "campaign", "-b", "all", "-p", "base,ltp", "-n", "8", "-i", "4", "-j", "1",
];
const TOTAL_RUNS: usize = 18;

fn ltp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ltp"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltp-campaign-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Complete (newline-terminated) manifest run lines — the checkpoints a
/// resume will trust. A torn trailing line from the kill is not counted,
/// matching the store's own recovery rule.
fn checkpointed(dir: &Path) -> usize {
    let Ok(text) = fs::read_to_string(dir.join("manifest.jsonl")) else {
        return 0;
    };
    let complete = match text.rfind('\n') {
        Some(i) => &text[..=i],
        None => "",
    };
    complete.lines().skip(1).filter(|l| !l.is_empty()).count()
}

#[test]
fn killed_campaign_resumes_to_a_byte_identical_store() {
    let interrupted = tmp_dir("killed");
    let clean = tmp_dir("clean");

    // Launch, wait for at least two durable checkpoints, then SIGKILL.
    let mut child = ltp()
        .args(CAMPAIGN_ARGS)
        .arg("-o")
        .arg(&interrupted)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("campaign child spawns");
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut finished_early = false;
    loop {
        if checkpointed(&interrupted) >= 2 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // The whole campaign beat us to the finish line; the test
            // degrades to resume-skips-everything, which must still be
            // byte-identical.
            assert!(status.success(), "campaign child failed: {status}");
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no campaign checkpoint appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    if !finished_early {
        child.kill().expect("kill campaign child");
    }
    let _ = child.wait();

    let done_before = checkpointed(&interrupted);
    assert!(done_before >= 2, "kill landed before any checkpoint");

    // Resume. Completed runs are skipped — verified by the run counts the
    // driver prints — and the remainder executes.
    let resumed = ltp()
        .args(CAMPAIGN_ARGS)
        .arg("-o")
        .arg(&interrupted)
        .arg("--resume")
        .output()
        .expect("resume runs");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    let expected = format!(
        "{} executed, {} skipped (already stored)",
        TOTAL_RUNS - done_before,
        done_before
    );
    assert!(
        stdout.contains(&expected),
        "resume counts wrong: wanted `{expected}` in:\n{stdout}"
    );

    // The uninterrupted reference campaign.
    let reference = ltp()
        .args(CAMPAIGN_ARGS)
        .arg("-o")
        .arg(&clean)
        .output()
        .expect("clean campaign runs");
    assert!(
        reference.status.success(),
        "clean campaign failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Byte-identical store: canonicalized manifest and final aggregate.
    for file in ["manifest.jsonl", "campaign.jsonl"] {
        let a = fs::read(interrupted.join(file)).expect(file);
        let b = fs::read(clean.join(file)).expect(file);
        assert_eq!(a, b, "{file} differs between resumed and clean campaigns");
    }

    // Byte-identical artifacts: `ltp report` over either store.
    for dir in [&interrupted, &clean] {
        let report = ltp()
            .arg("report")
            .arg(dir)
            .arg("--quiet")
            .status()
            .expect("report runs");
        assert!(report.success(), "report failed for {}", dir.display());
    }
    for stem in ["fig1", "fig2", "fig6", "fig7", "fig9", "t2", "t3", "t4"] {
        for ext in ["md", "json"] {
            let file = format!("reports/{stem}.{ext}");
            let a = fs::read(interrupted.join(&file)).expect(&file);
            let b = fs::read(clean.join(&file)).expect(&file);
            assert_eq!(a, b, "{file} differs between resumed and clean stores");
        }
    }

    fs::remove_dir_all(&interrupted).unwrap();
    fs::remove_dir_all(&clean).unwrap();
}

#[test]
fn campaign_refuses_a_dirty_store_without_resume() {
    let dir = tmp_dir("guard");
    let args = [
        "campaign", "-b", "em3d", "-p", "base", "-n", "4", "-i", "2", "-o",
    ];
    let first = ltp()
        .args(args)
        .arg(&dir)
        .output()
        .expect("first campaign runs");
    assert!(first.status.success());
    let second = ltp()
        .args(args)
        .arg(&dir)
        .output()
        .expect("second campaign runs");
    assert!(
        !second.status.success(),
        "a non-empty store must demand --resume"
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("--resume"), "unhelpful error: {stderr}");
    fs::remove_dir_all(&dir).unwrap();
}
