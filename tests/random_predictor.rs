//! Randomized tests over the predictors in isolation: arbitrary interleaved
//! touch/invalidation/verification streams must never break the predictor's
//! internal bookkeeping, and the signature encoders must satisfy their
//! algebraic contracts.
//!
//! Generation is driven by the repository's own seeded [`SimRng`], so every
//! "random" case is reproducible from its printed seed.

use ltp::core::{
    BlockId, FillInfo, FillKind, GlobalLtp, LastPc, Pc, PerBlockLtp, PredictorConfig,
    SelfInvalidationPolicy, Signature, SignatureBits, SignatureEncoder, SyncKind, Touch,
    TruncatedAdd, VerifyOutcome, XorRotate,
};
use ltp::sim::SimRng;
use std::collections::HashMap;

/// One step of a predictor-driving script.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Touch block b with PC site s (write if w).
    Touch(u8, u8, bool),
    /// External invalidation of block b (delivered only if the block is
    /// mid-trace, as the machine would).
    Invalidate(u8),
    /// A synchronization boundary.
    Sync,
}

fn gen_step(rng: &mut SimRng) -> Step {
    match rng.below(7) {
        0..=3 => Step::Touch(rng.below(8) as u8, rng.below(6) as u8, rng.chance(1, 2)),
        4 | 5 => Step::Invalidate(rng.below(8) as u8),
        _ => Step::Sync,
    }
}

fn gen_script(rng: &mut SimRng, max_len: u64) -> Vec<Step> {
    let len = rng.range(1, max_len) as usize;
    (0..len).map(|_| gen_step(rng)).collect()
}

/// Drives a policy through the script while honouring the machine's
/// contract: a fired block's trace ends (no invalidation for it until it is
/// refetched), every fire eventually gets exactly one verification, and the
/// first touch after an invalidation or fire is a demand fill.
fn drive<P: SelfInvalidationPolicy>(policy: &mut P, script: &[Step], outcomes: &[bool]) {
    let mut cached: HashMap<u8, bool> = HashMap::new(); // block -> cached?
    let mut pending_fires: Vec<u8> = Vec::new();
    let mut outcome_idx = 0;
    for s in script {
        match *s {
            Step::Touch(b, site, is_write) => {
                let was_cached = cached.get(&b).copied().unwrap_or(false);
                let fill = if was_cached {
                    None
                } else {
                    // Refetching after a fire resolves that fire first, in
                    // FIFO order, as the directory's mask would.
                    if let Some(pos) = pending_fires.iter().position(|&fb| fb == b) {
                        pending_fires.remove(pos);
                        let correct = outcomes.get(outcome_idx).copied().unwrap_or(true);
                        outcome_idx += 1;
                        policy.on_verification(
                            BlockId::new(u64::from(b)),
                            if correct {
                                VerifyOutcome::Correct
                            } else {
                                VerifyOutcome::Premature
                            },
                        );
                    }
                    Some(FillInfo {
                        kind: FillKind::Demand,
                        dir_version: 0,
                        migratory_upgrade: false,
                    })
                };
                let fired = policy.on_touch(Touch {
                    block: BlockId::new(u64::from(b)),
                    pc: Pc::new(0x4_0000 + u32::from(site) * 0x11b4),
                    is_write,
                    exclusive: is_write,
                    fill,
                });
                if fired {
                    cached.insert(b, false);
                    pending_fires.push(b);
                } else {
                    cached.insert(b, true);
                }
            }
            Step::Invalidate(b) => {
                if cached.get(&b).copied().unwrap_or(false) {
                    policy.on_invalidation(BlockId::new(u64::from(b)));
                    cached.insert(b, false);
                }
            }
            Step::Sync => {
                for b in policy.on_sync(SyncKind::Barrier) {
                    let key = b.index() as u8;
                    cached.insert(key, false);
                    pending_fires.push(key);
                }
            }
        }
    }
    // Resolve any leftover fires so the FIFO drains.
    for b in pending_fires {
        policy.on_verification(BlockId::new(u64::from(b)), VerifyOutcome::Correct);
    }
}

#[test]
fn predictors_survive_arbitrary_event_streams() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0011);
    for case in 0..256 {
        let script = gen_script(&mut rng, 200);
        let outcomes: Vec<bool> = (0..64).map(|_| rng.chance(1, 2)).collect();
        let cfg = PredictorConfig::default();

        let mut per_block = PerBlockLtp::new(SignatureBits::PER_BLOCK_DEFAULT, 4, cfg);
        drive(&mut per_block, &script, &outcomes);
        let s = per_block.storage();
        assert!(
            s.live_entries <= s.blocks_tracked * 4,
            "case {case}: LRU cap respected"
        );

        let mut global = GlobalLtp::new(SignatureBits::BASE, 64, 2, cfg);
        drive(&mut global, &script, &outcomes);
        assert!(global.storage().live_entries <= 64 * 2, "case {case}");

        let mut last_pc = LastPc::with_config(4, cfg);
        drive(&mut last_pc, &script, &outcomes);
    }
}

#[test]
fn fired_total_is_monotone_and_bounded_by_touches() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0012);
    for case in 0..128 {
        let script = gen_script(&mut rng, 150);
        let mut p = PerBlockLtp::new(
            SignatureBits::PER_BLOCK_DEFAULT,
            8,
            PredictorConfig::default(),
        );
        let touches = script
            .iter()
            .filter(|s| matches!(s, Step::Touch(..)))
            .count() as u64;
        drive(&mut p, &script, &[]);
        assert!(p.fired_total() <= touches, "case {case}");
    }
}

#[test]
fn truncated_add_is_incremental_and_width_masked() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0013);
    for _ in 0..256 {
        let width = SignatureBits::new(rng.range(1, 33) as u8).unwrap();
        let enc = TruncatedAdd::new(width);
        let pcs: Vec<Pc> = (0..rng.range(1, 40))
            .map(|_| Pc::new(rng.next_u64() as u32))
            .collect();
        // Incremental folding equals whole-trace encoding.
        let mut sig = enc.start(pcs[0]);
        for &pc in &pcs[1..] {
            sig = enc.fold(sig, pc);
        }
        assert_eq!(sig, enc.encode_trace(&pcs));
        // Signatures never exceed the width.
        assert_eq!(sig.bits() & !width.mask(), 0);
        // Truncated addition is exactly a modular sum.
        let sum: u32 = pcs.iter().fold(0u32, |a, p| a.wrapping_add(p.value()));
        assert_eq!(sig, Signature::from_bits(sum, width));
    }
}

#[test]
fn xor_rotate_is_deterministic_and_masked() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0014);
    for _ in 0..256 {
        let width = SignatureBits::new(rng.range(2, 33) as u8).unwrap();
        let rotation = rng.range(1, 8) as u32;
        let enc = XorRotate::new(width, rotation);
        let pcs: Vec<Pc> = (0..rng.range(1, 40))
            .map(|_| Pc::new(rng.next_u64() as u32))
            .collect();
        let a = enc.encode_trace(&pcs);
        let b = enc.encode_trace(&pcs);
        assert_eq!(a, b);
        assert_eq!(a.bits() & !width.mask(), 0);
    }
}

#[test]
fn subtrace_extension_changes_truncated_signature_unless_zero_mod() {
    // Appending a PC changes the signature iff the PC is nonzero mod
    // 2^k — the precise condition behind the §3.1 subtrace-aliasing
    // discussion.
    let mut rng = SimRng::from_seed(0x15CA_2000_0015);
    let width = SignatureBits::PER_BLOCK_DEFAULT;
    let enc = TruncatedAdd::new(width);
    for _ in 0..256 {
        let pcs: Vec<Pc> = (0..rng.range(1, 20))
            .map(|_| Pc::new(rng.range(1, 0x7fff_ffff) as u32))
            .collect();
        let extra = rng.range(1, 0x7fff_ffff) as u32;
        let base = enc.encode_trace(&pcs);
        let extended = enc.fold(base, Pc::new(extra));
        if extra & width.mask() == 0 {
            assert_eq!(base, extended, "zero-mod PCs alias their prefix");
        } else {
            assert_ne!(base, extended);
        }
    }
}
