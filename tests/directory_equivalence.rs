//! Directory-organization equivalence and determinism tests.
//!
//! The tentpole invariants of the scalable sharer representations:
//!
//! * `full` on the new `SharerSet` behaves exactly like the seed's
//!   `BTreeSet` full map — and any organization whose representation stays
//!   exact (`coarse:1`, `ptr:I` that never overflows) is *bit-identical*
//!   to `full`, report for report;
//! * imprecise organizations (`coarse:K>1`, overflowing `ptr:I`) remain
//!   deterministic: same spec, same report;
//! * `extra_invalidations == 0` whenever the sharer count fits the
//!   representation exactly, and only imprecision makes it positive.
//!
//! Random workloads are driven by the repository's seeded [`SimRng`], so
//! every case is reproducible.

use ltp::core::{BlockId, Pc, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::{DirectoryKind, SystemConfig};
use ltp::sim::{Cycle, SimRng, StopReason};
use ltp::system::{ExperimentSpec, Machine, Metrics};
use ltp::workloads::{Benchmark, LoopedScript, Op, Program};

// ---- randomized machine harness (mirrors tests/random_machine.rs) --------

#[derive(Debug, Clone, Copy)]
enum GenOp {
    Think(u16),
    Read(u8, u8),
    Write(u8, u8),
}

fn gen_workload(rng: &mut SimRng, nodes: usize) -> (Vec<Vec<GenOp>>, u32) {
    let per_node = (0..nodes)
        .map(|_| {
            let len = rng.range(1, 10) as usize;
            (0..len)
                .map(|_| match rng.below(3) {
                    0 => GenOp::Think(rng.range(1, 150) as u16),
                    1 => GenOp::Read(rng.below(16) as u8, rng.below(10) as u8),
                    _ => GenOp::Write(rng.below(16) as u8, rng.below(10) as u8),
                })
                .collect()
        })
        .collect();
    (per_node, rng.range(1, 4) as u32)
}

fn lower(per_node: &[Vec<GenOp>], iters: u32) -> Vec<Box<dyn Program>> {
    per_node
        .iter()
        .map(|ops| {
            let mut body: Vec<Op> = Vec::new();
            for op in ops {
                match *op {
                    GenOp::Think(c) => body.push(Op::Think(u64::from(c))),
                    GenOp::Read(b, s) => body.push(Op::Read {
                        pc: Pc::new(0x5_0000 + u32::from(s) * 0x9c4),
                        block: BlockId::new(u64::from(b)),
                    }),
                    GenOp::Write(b, s) => body.push(Op::Write {
                        pc: Pc::new(0x6_0000 + u32::from(s) * 0xa38),
                        block: BlockId::new(u64::from(b)),
                    }),
                }
            }
            body.push(Op::Barrier(0));
            Box::new(LoopedScript::new(Vec::new(), body, iters)) as Box<dyn Program>
        })
        .collect()
}

fn run(
    directory: DirectoryKind,
    policy_spec: &str,
    per_node: &[Vec<GenOp>],
    iters: u32,
) -> Metrics {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse(policy_spec).expect("builtin spec");
    let nodes = per_node.len() as u16;
    let cfg = SystemConfig::builder()
        .nodes(nodes)
        .directory(directory)
        .build()
        .expect("valid");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let mut machine = Machine::new(cfg, policies, lower(per_node, iters));
    machine.attach_core_metrics();
    let summary = machine.run(Cycle::new(200_000_000));
    assert_ne!(
        summary.stop,
        StopReason::HorizonReached,
        "deadlock under {directory} / {policy_spec}:\n{}",
        machine.stuck_report()
    );
    assert!(machine.all_finished());
    let (metrics, _) = machine.finish();
    metrics.expect("core metrics attached")
}

#[test]
fn exact_organizations_are_bit_identical_to_full_map() {
    // coarse:1 and a never-overflowing ptr:N are exact representations; a
    // run under them must produce metrics bit-identical to the full map,
    // under every policy, with zero over-invalidation — randomized across
    // workload shapes.
    let mut rng = SimRng::from_seed(0x15CA_2000_0010);
    for case in 0..24 {
        let (per_node, iters) = gen_workload(&mut rng, 4);
        for policy in ["base", "dsi", "ltp"] {
            let full = run(DirectoryKind::Full, policy, &per_node, iters);
            for alias in [
                DirectoryKind::Coarse { cluster: 1 },
                DirectoryKind::LimitedPtr { pointers: 4 },
            ] {
                let m = run(alias, policy, &per_node, iters);
                assert_eq!(m, full, "case {case}: {alias} != full under {policy}");
                assert_eq!(m.broadcast_overflows, 0, "case {case} {alias}");
            }
            assert_eq!(full.extra_invalidations, 0, "case {case} {policy}");
        }
    }
}

#[test]
fn imprecise_organizations_stay_deterministic() {
    let mut rng = SimRng::from_seed(0x15CA_2000_0011);
    for case in 0..12 {
        let (per_node, iters) = gen_workload(&mut rng, 6);
        for directory in [
            DirectoryKind::Coarse { cluster: 3 },
            DirectoryKind::LimitedPtr { pointers: 1 },
        ] {
            for policy in ["base", "ltp"] {
                let a = run(directory, policy, &per_node, iters);
                let b = run(directory, policy, &per_node, iters);
                assert_eq!(a, b, "case {case}: {directory} under {policy}");
            }
        }
    }
}

#[test]
fn exact_fit_has_no_extra_invalidations() {
    // Every node reads the block, then the last one writes it: the sharer
    // count fills each coarse cluster exactly and fits a ptr array sized to
    // the machine, so neither organization over-invalidates.
    let nodes = 4u16;
    let mk = |i: u64| -> Box<dyn Program> {
        let mut ops = vec![
            Op::Read {
                pc: Pc::new(0x100),
                block: BlockId::new(1),
            },
            Op::Barrier(0),
        ];
        if i == 3 {
            ops.push(Op::Write {
                pc: Pc::new(0x200),
                block: BlockId::new(1),
            });
        }
        Box::new(LoopedScript::new(ops, vec![], 0))
    };
    for directory in [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 2 },
        DirectoryKind::LimitedPtr { pointers: 4 },
    ] {
        let cfg = SystemConfig::builder()
            .nodes(nodes)
            .directory(directory)
            .build()
            .unwrap();
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
            .map(|_| Box::new(ltp::core::NullPolicy) as Box<dyn SelfInvalidationPolicy>)
            .collect();
        let mut machine = Machine::new(cfg, policies, (0..u64::from(nodes)).map(mk).collect());
        machine.attach_core_metrics();
        assert_ne!(
            machine.run(Cycle::new(10_000_000)).stop,
            StopReason::HorizonReached
        );
        let (m, _) = machine.finish();
        let m = m.expect("core metrics attached");
        assert_eq!(
            m.extra_invalidations, 0,
            "{directory}: all invalidation targets held copies"
        );
        assert_eq!(m.broadcast_overflows, 0, "{directory}");
        assert_eq!(m.not_predicted, 3, "{directory}: 3 sharers invalidated");
    }
}

#[test]
fn over_invalidation_is_measured_when_the_fit_breaks() {
    // 3 sharers under ptr:1 overflow into broadcast: the write invalidates
    // every other node, including those that never shared.
    let report = |directory| {
        ExperimentSpec::builder(Benchmark::Moldyn)
            .policy_spec("base")
            .unwrap()
            .nodes(8)
            .iterations(4)
            .directory(directory)
            .build()
            .run()
    };
    let full = report(DirectoryKind::Full);
    let ptr1 = report(DirectoryKind::LimitedPtr { pointers: 1 });
    assert_eq!(full.metrics.extra_invalidations, 0);
    assert_eq!(full.metrics.broadcast_overflows, 0);
    assert!(
        ptr1.metrics.broadcast_overflows > 0,
        "moldyn's multi-sharer blocks must overflow a single pointer"
    );
    assert!(
        ptr1.metrics.extra_invalidations > 0,
        "broadcast rounds hit nodes without copies"
    );
    assert!(ptr1.metrics.invalidations_sent > full.metrics.invalidations_sent);
}

#[test]
fn all_nine_benchmarks_complete_under_every_organization() {
    // The scaled-down suite completes (no deadlock) under coarse and
    // limited-pointer directories with every built-in policy family's most
    // aggressive member running, and reports stay self-consistent.
    for benchmark in Benchmark::ALL {
        for directory in [
            DirectoryKind::Coarse { cluster: 4 },
            DirectoryKind::LimitedPtr { pointers: 2 },
        ] {
            let report = ExperimentSpec::builder(benchmark)
                .policy_spec("ltp")
                .unwrap()
                .nodes(8)
                .iterations(2)
                .directory(directory)
                .build()
                .run();
            assert!(report.metrics.exec_cycles > 0, "{benchmark} {directory}");
            assert_eq!(report.directory, directory);
        }
    }
}
