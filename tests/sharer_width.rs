//! Width-generic sharer-set acceptance tests.
//!
//! The hybrid `SharerSet` (inline small-set spilling to a heap bit-vector)
//! replaced the fixed 256-bit array, so three things need pinning:
//!
//! * **Model equivalence** — under seeded random op streams at machine
//!   widths well past the old 256-node ceiling, the hybrid representation
//!   must agree with a naive `BTreeSet` model on every observable: member
//!   queries, length, ascending iteration, equality, and hashing.
//! * **Representation transitions** — crossing the inline capacity in both
//!   directions (inline → spilled → inline) must preserve contents, and
//!   equality/hashing must be *history-independent* (a set that spilled and
//!   shrank equals one built small directly).
//! * **Machine-width end-to-end** — full-map machines beyond 256 nodes run
//!   to completion with consistent invalidation accounting (the 32-node
//!   golden-report parity that pins bit-identity for existing widths lives
//!   in `tests/probe_api.rs` and must keep passing unchanged).

use std::collections::BTreeSet;
use std::hash::{DefaultHasher, Hash, Hasher};

use ltp::core::{
    BlockId, NodeId, Pc, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy, SharerSet,
};
use ltp::dsm::SystemConfig;
use ltp::sim::{Cycle, SimRng, StopReason};
use ltp::system::{ExperimentSpec, Machine};
use ltp::workloads::{Benchmark, LoopedScript, Op, Program, WorkloadParams};

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Asserts every observable of the hybrid set against the model.
fn assert_agrees(set: &SharerSet, model: &BTreeSet<u16>, width: u16, ctx: &str) {
    assert_eq!(set.len(), model.len(), "{ctx}: length diverged");
    assert_eq!(
        set.is_empty(),
        model.is_empty(),
        "{ctx}: emptiness diverged"
    );
    let ours: Vec<u16> = set.iter().map(|n| n.index() as u16).collect();
    let theirs: Vec<u16> = model.iter().copied().collect();
    assert_eq!(ours, theirs, "{ctx}: ascending iteration diverged");
    // Membership probes beyond the live members (including the width edge).
    let mut rng = SimRng::from_seed(0xC0FFEE ^ u64::from(width));
    for _ in 0..32 {
        let probe = rng.below(u64::from(width)) as u16;
        assert_eq!(
            set.contains(NodeId::new(probe)),
            model.contains(&probe),
            "{ctx}: contains({probe}) diverged"
        );
    }
    // A rebuilt-from-scratch copy must compare and hash equal regardless of
    // the original's insert/remove history.
    let rebuilt: SharerSet = model.iter().map(|&n| NodeId::new(n)).collect();
    assert_eq!(set, &rebuilt, "{ctx}: history-dependent equality");
    assert_eq!(
        hash_of(set),
        hash_of(&rebuilt),
        "{ctx}: history-dependent hash"
    );
}

#[test]
fn fuzzed_equivalence_with_btreeset_model_at_every_width() {
    // 257 and 4096 are the interesting edges: one past the old u16x4 cap,
    // and the scaling target. 32/256 pin the legacy widths.
    for &width in &[32u16, 256, 257, 1024, 4096] {
        let mut rng = SimRng::from_seed(0x5EED_0001 ^ (u64::from(width) << 8));
        let mut set = SharerSet::new();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for step in 0..4000u32 {
            let node = rng.below(u64::from(width)) as u16;
            match rng.below(10) {
                // Insert-biased so spills actually happen at wide widths.
                0..=5 => {
                    set.insert(NodeId::new(node));
                    model.insert(node);
                }
                6..=8 => {
                    set.remove(NodeId::new(node));
                    model.remove(&node);
                }
                _ => {
                    set.clear();
                    model.clear();
                }
            }
            if step % 257 == 0 {
                assert_agrees(&set, &model, width, &format!("width {width} step {step}"));
            }
        }
        assert_agrees(&set, &model, width, &format!("width {width} final"));
    }
}

#[test]
fn inline_to_spill_to_inline_transitions_preserve_contents() {
    let cap = SharerSet::INLINE as u16;
    let mut set = SharerSet::new();
    // Fill exactly to the inline capacity: still inline.
    for n in 0..cap {
        set.insert(NodeId::new(n * 31));
    }
    assert!(!set.is_spilled(), "at capacity the set stays inline");
    // One more (with a large id, so the bit-vector must size to it): spill.
    set.insert(NodeId::new(4095));
    assert!(set.is_spilled(), "the {}th member spills", cap + 1);
    assert_eq!(set.len(), usize::from(cap) + 1);
    for n in 0..cap {
        assert!(set.contains(NodeId::new(n * 31)));
    }
    assert!(set.contains(NodeId::new(4095)));
    // Remove back below capacity: shrinks to inline with contents intact.
    set.remove(NodeId::new(4095));
    assert!(!set.is_spilled(), "shrinking to capacity re-inlines");
    let survivors: Vec<u16> = set.iter().map(|n| n.index() as u16).collect();
    let expected: Vec<u16> = (0..cap).map(|n| n * 31).collect();
    assert_eq!(survivors, expected);
}

#[test]
fn spill_boundary_cycling_is_stable() {
    // Repeatedly oscillate across the boundary; every pass must land in
    // the same state (no leaked words, no drifting equality).
    let cap = SharerSet::INLINE as u16;
    let mut set = SharerSet::new();
    for n in 0..cap {
        set.insert(NodeId::new(n));
    }
    let inline_snapshot = set.clone();
    let inline_hash = hash_of(&set);
    for round in 0..50u16 {
        let extra = 256 + round * 7;
        set.insert(NodeId::new(extra));
        assert!(set.is_spilled(), "round {round}: insert must spill");
        set.remove(NodeId::new(extra));
        assert!(!set.is_spilled(), "round {round}: remove must re-inline");
        assert_eq!(set, inline_snapshot, "round {round}: contents drifted");
        assert_eq!(hash_of(&set), inline_hash, "round {round}: hash drifted");
    }
}

#[test]
fn wide_full_map_machines_run_with_exact_invalidation_accounting() {
    // A producer/consumer benchmark crossing the old ceiling: every node
    // reads shared data each iteration, so the full map must track >256
    // sharers exactly — any lost sharer shows up as a stuck machine or a
    // missing invalidation. (Machine-level asserts check token
    // monotonicity; `extra_invalidations == 0` pins full-map exactness.)
    for &nodes in &[257u16, 320] {
        let report = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("base")
            .expect("builtin spec")
            .workload(WorkloadParams::quick(nodes, 1))
            .build()
            .run();
        let m = &report.metrics;
        assert!(m.exec_cycles > 0, "{nodes} nodes: machine ran");
        assert!(m.invalidations_sent > 0, "{nodes} nodes: sharing happened");
        assert_eq!(
            m.extra_invalidations, 0,
            "{nodes} nodes: a full map never over-invalidates"
        );
        assert_eq!(m.dir_evictions, 0, "{nodes} nodes: full maps never evict");
    }
}

#[test]
fn a_single_entry_tracks_more_sharers_than_the_old_ceiling() {
    // The sharpest width proof: every one of 320 nodes reads the same
    // block, then node 0 writes it. The home's *single* full-map entry must
    // hold all 320 sharers at once and invalidate exactly the other 319 —
    // one lost sharer deadlocks the write, one phantom shows up as an
    // extra invalidation.
    let nodes: u16 = 320;
    let read = Op::Read {
        pc: Pc::new(0x8_0000),
        block: BlockId::new(0),
    };
    let write = Op::Write {
        pc: Pc::new(0x8_1000),
        block: BlockId::new(0),
    };
    let programs: Vec<Box<dyn Program>> = (0..nodes)
        .map(|p| {
            let mut body = vec![read, Op::Barrier(0)];
            if p == 0 {
                body.push(write);
            }
            body.push(Op::Barrier(1));
            Box::new(LoopedScript::new(Vec::new(), body, 1)) as Box<dyn Program>
        })
        .collect();
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("base").expect("builtin spec");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let cfg = SystemConfig::builder().nodes(nodes).build().expect("valid");
    let mut machine = Machine::new(cfg, policies, programs);
    machine.attach_core_metrics();
    let summary = machine.run(Cycle::new(50_000_000));
    assert_ne!(
        summary.stop,
        StopReason::HorizonReached,
        "wide invalidation deadlocked:\n{}",
        machine.stuck_report()
    );
    let (metrics, _) = machine.finish();
    let m = metrics.expect("core metrics attached");
    assert_eq!(
        m.invalidations_sent,
        u64::from(nodes) - 1,
        "the write must invalidate every other sharer exactly once"
    );
    assert_eq!(m.extra_invalidations, 0, "full maps are exact at any width");
}
