//! Combining-tree barrier acceptance tests.
//!
//! The global barrier fold runs through a combining tree instead of a
//! central wait-set, and the claim is that this changes *cost*, never
//! *behavior*: releases land at window-boundary cycles, so every report is
//! bit-identical to the central wait-set — across fan-ins, shard counts,
//! and machine widths. (The pre-PR 32-node goldens in `tests/probe_api.rs`
//! pin the old wait-set behavior byte-for-byte; everything here extends
//! that to the knobs the tree introduced.)
//!
//! The malformed-workload guard also survives the rewrite: any node
//! arriving at a second barrier id while one is collecting must hard-panic
//! ("distinct barrier"), never silently merge, at any width or fan-in.

use ltp::core::{PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::SystemConfig;
use ltp::sim::{Cycle, SimRng};
use ltp::system::{ExperimentSpec, Machine, RunReport};
use ltp::workloads::{Benchmark, LoopedScript, Op, Program, WorkloadParams};

fn spec(benchmark: Benchmark, nodes: u16, iters: u32, fanin: u16) -> ExperimentSpec {
    ExperimentSpec::builder(benchmark)
        .policy_spec("ltp")
        .unwrap()
        .nodes(nodes)
        .iterations(iters)
        .barrier_fanin(fanin)
        .build()
}

fn run_sharded(base: &ExperimentSpec, shards: usize) -> RunReport {
    let mut spec = base.clone();
    spec.shards = shards;
    spec.run()
}

#[test]
fn every_fanin_is_bit_identical_at_legacy_widths() {
    // 32 and 256 nodes: the widths the central wait-set served. Fan-in
    // only restructures the arrival counters; the released set and the
    // release cycle are properties of the workload and the window grid.
    for &(nodes, iters) in &[(32u16, 2u32), (256, 1)] {
        let baseline = spec(Benchmark::Em3d, nodes, iters, 4).run().to_json();
        for fanin in [2u16, 3, 8, 256] {
            let report = spec(Benchmark::Em3d, nodes, iters, fanin).run().to_json();
            assert_eq!(
                report, baseline,
                "{nodes} nodes: fan-in {fanin} diverged from fan-in 4"
            );
        }
    }
}

#[test]
fn thousand_node_barriers_are_deterministic_across_shard_counts() {
    // 1024 nodes exercises a 5-level fan-in-4 tree; windows partition the
    // arrival records differently at every shard count, so this pins the
    // fold-order independence of the tree (releases quantized to the grid).
    let base = ExperimentSpec::builder(Benchmark::Em3d)
        .policy_spec("base")
        .unwrap()
        .nodes(1024)
        .workload(WorkloadParams::quick(1024, 2))
        .build();
    let serial = base.run().to_json();
    for shards in [2usize, 4, 8] {
        let sharded = run_sharded(&base, shards).to_json();
        assert_eq!(
            sharded, serial,
            "1024 nodes: {shards}-shard report diverged from serial"
        );
    }
}

/// Builds an N-node machine where every node loops `Think(stagger) ;
/// Barrier(i)` over `rounds` sequential barrier ids — except `skipper`,
/// which omits barrier `skipped` entirely (when set). Returns the run
/// outcome via the machine's completion.
fn barrier_storm(nodes: u16, fanin: u16, rounds: u32, rng: &mut SimRng, skip: Option<(u16, u32)>) {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("base").expect("builtin spec");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let programs: Vec<Box<dyn Program>> = (0..nodes)
        .map(|p| {
            let mut body = Vec::new();
            for id in 0..rounds {
                body.push(Op::Think(rng.range(1, 400)));
                if skip != Some((p, id)) {
                    body.push(Op::Barrier(id));
                }
            }
            Box::new(LoopedScript::new(Vec::new(), body, 1)) as Box<dyn Program>
        })
        .collect();
    let cfg = SystemConfig::builder()
        .nodes(nodes)
        .barrier_fanin(fanin)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, policies, programs);
    let summary = machine.run(Cycle::new(50_000_000));
    assert!(
        machine.all_finished(),
        "barrier storm stuck ({:?}):\n{}",
        summary.stop,
        machine.stuck_report()
    );
}

#[test]
fn staggered_barrier_storms_complete_at_every_fanin() {
    // Seeded random stagger so arrivals straddle many windows; all live
    // nodes must release every round at every tree shape.
    let mut rng = SimRng::from_seed(0xBA44_1E40_0001);
    for &nodes in &[5u16, 17, 64, 257] {
        for fanin in [2u16, 4, 7] {
            barrier_storm(nodes, fanin, 4, &mut rng, None);
        }
    }
}

#[test]
fn skipped_barriers_hard_panic_at_any_tree_shape() {
    // Fuzzed regression for the "distinct barrier" guard: one random node
    // skips one random (non-final) barrier id, so some node always reaches
    // the next id while others still collect the skipped one. The fold
    // must panic — a silent merge would corrupt release bookkeeping.
    let mut rng = SimRng::from_seed(0xBA44_1E40_0002);
    for case in 0..6 {
        let nodes = *[5u16, 33, 64].get(case % 3).unwrap();
        let fanin = *[2u16, 4].get(case % 2).unwrap();
        let skipper = rng.below(u64::from(nodes)) as u16;
        let skipped = rng.below(2) as u32; // one of the first two of 3 rounds
        let seed = rng.next_u64();
        let result = std::panic::catch_unwind(move || {
            let mut inner = SimRng::from_seed(seed);
            barrier_storm(nodes, fanin, 3, &mut inner, Some((skipper, skipped)));
        });
        let payload = result.expect_err(&format!(
            "case {case}: node {skipper} skipping barrier {skipped} must panic"
        ));
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("distinct barrier"),
            "case {case}: wrong panic: {msg}"
        );
    }
}
