//! Differential tests: the offline prediction path against the full
//! simulation.
//!
//! The claim behind `ltp predict` is that predictor quality can be
//! evaluated without simulating the machine. These tests prove the two
//! halves of that claim:
//!
//! 1. **Capture-replay exactness** (all nine benchmarks): wrap every
//!    policy of a full simulation in a [`CapturePolicy`], re-drive the
//!    captured per-node event stream through *fresh* policies with
//!    [`replay_capture`], and assert the offline pass reproduces every
//!    decision and every directory verdict. The offline
//!    [`VerdictEngine`]'s mask accounting is thereby checked against the
//!    real directory's, event for event, on the machine's own
//!    interleaving. (Runs serial — the capture log must observe the true
//!    global order.)
//!
//! 2. **Logical-replay equivalence** (the barrier-only benchmarks): run
//!    the *actual* `ltp predict` path — `ltp_workloads::replay`, which
//!    synthesizes the coherence events itself — and assert its verdict
//!    stream matches the machine's `PredictionVerified` events
//!    per-(node, block). For data-race-free programs whose only
//!    synchronization is barriers, conflicting accesses are ordered by
//!    barrier epochs, so hit/miss classification, invalidation points,
//!    and verdicts are timing-independent: the replay is exact, not
//!    approximate. Lock- and flag-based kernels (barnes, dsmc, ocean,
//!    raytrace, appbt) idealize spin waits and are deliberately excluded
//!    here — their offline numbers are faithful aggregates, not
//!    event-for-event replicas (see `crates/workloads/src/replay.rs`).
//!
//! The `timely` flag on machine verdicts is network-timing information
//! with no offline counterpart and is excluded from comparison.

use std::sync::{Arc, Mutex};

use ltp::core::{
    replay_capture, verdicts_by_site, CaptureLog, CapturePolicy, PolicyRegistry, PredictorConfig,
    SelfInvalidationPolicy, VerdictRecord, VerifyOutcome,
};
use ltp::dsm::{DirectoryKind, SystemConfig};
use ltp::sim::Cycle;
use ltp::system::{Machine, MetricsSection, Probe, ProbeCtx, SimEvent};
use ltp::workloads::{replay, Benchmark, WorkloadParams, WorkloadSource};

const NODES: u16 = 4;
const ITERS: u32 = 3;
const HORIZON: u64 = 2_000_000_000;

/// Collects every `PredictionVerified` event the machine emits, in event
/// order (`timely` dropped — it has no offline counterpart).
#[derive(Debug)]
struct VerdictTap(Arc<Mutex<Vec<VerdictRecord>>>);

impl Probe for VerdictTap {
    fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
        if let SimEvent::PredictionVerified {
            node,
            block,
            outcome,
            ..
        } = *event
        {
            self.0.lock().unwrap().push(VerdictRecord {
                node,
                block,
                outcome,
            });
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        None
    }
}

fn programs(bench: Benchmark, params: &WorkloadParams) -> Vec<Box<dyn ltp::workloads::Program>> {
    WorkloadSource::from(bench)
        .programs(params)
        .expect("synthetic benchmarks are infallible")
}

fn ltp_policies(n: u16) -> Vec<Box<dyn SelfInvalidationPolicy>> {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    (0..n)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect()
}

/// Runs `bench` on a serial machine with capture-wrapped LTP policies;
/// returns the capture log plus the machine's own verdict stream.
fn captured_machine_run(bench: Benchmark) -> (CaptureLog, Vec<VerdictRecord>) {
    let params = WorkloadParams::quick(NODES, ITERS);
    let config = SystemConfig::builder()
        .nodes(NODES)
        .directory(DirectoryKind::Full)
        .build()
        .expect("valid config");
    let log = CaptureLog::shared();
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = ltp_policies(NODES)
        .into_iter()
        .enumerate()
        .map(|(n, inner)| {
            Box::new(CapturePolicy::new(
                ltp::core::NodeId::new(n as u16),
                inner,
                Arc::clone(&log),
            )) as Box<dyn SelfInvalidationPolicy>
        })
        .collect();
    let verdicts = Arc::new(Mutex::new(Vec::new()));
    // Machine::new = one shard: policy callbacks happen on one thread in
    // true machine order, which is what the capture log records.
    let mut machine = Machine::new(config, policies, programs(bench, &params));
    machine.attach_probe(Box::new(VerdictTap(Arc::clone(&verdicts))));
    machine.run(Cycle::new(HORIZON));
    assert!(machine.all_finished(), "{bench:?} deadlocked");
    drop(machine);
    let log = Arc::try_unwrap(log)
        .expect("machine dropped its policy handles")
        .into_inner()
        .unwrap();
    let verdicts = Arc::try_unwrap(verdicts).unwrap().into_inner().unwrap();
    (log, verdicts)
}

#[test]
fn capture_and_machine_agree_on_every_verdict() {
    for bench in Benchmark::ALL {
        let (log, machine_verdicts) = captured_machine_run(bench);
        // The capture wrapper saw exactly the verdicts the machine emitted,
        // in the same order.
        assert_eq!(
            log.verdicts, machine_verdicts,
            "{bench:?}: capture wrapper vs SimEvent stream"
        );
        assert!(
            machine_verdicts
                .iter()
                .any(|v| v.outcome == VerifyOutcome::Correct),
            "{bench:?}: LTP verifies at least one prediction"
        );
    }
}

#[test]
fn offline_replay_of_captured_events_is_exact_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let (log, _) = captured_machine_run(bench);
        let events: Vec<_> = log.records.iter().map(|r| r.event.clone()).collect();
        let mut fresh = ltp_policies(NODES);
        let outcome = replay_capture(&events, &mut fresh);

        // Every decision the fresh policies made offline matches what the
        // captured policies decided inside the machine...
        assert_eq!(
            outcome.records.len(),
            log.records.len(),
            "{bench:?}: event counts"
        );
        for (i, (offline, online)) in outcome.records.iter().zip(&log.records).enumerate() {
            assert_eq!(offline, online, "{bench:?}: decision {i} diverged offline");
        }
        // ...and the offline VerdictEngine reconstructs the directory's
        // verdicts: identical per-(node, block) outcome sequences.
        assert_eq!(
            verdicts_by_site(&outcome.verdicts),
            verdicts_by_site(&log.verdicts),
            "{bench:?}: offline verdict reconstruction diverged"
        );
        let correct = |vs: &[VerdictRecord]| {
            vs.iter()
                .filter(|v| v.outcome == VerifyOutcome::Correct)
                .count()
        };
        assert_eq!(
            correct(&outcome.verdicts),
            correct(&log.verdicts),
            "{bench:?}: correct totals"
        );
        assert_eq!(
            outcome.verdicts.len(),
            log.verdicts.len(),
            "{bench:?}: verdict totals"
        );
    }
}

/// The benchmarks whose only synchronization is barriers — the ones where
/// the full logical replay is provably exact (see the module docs).
const BARRIER_ONLY: [Benchmark; 4] = [
    Benchmark::Em3d,
    Benchmark::Moldyn,
    Benchmark::Tomcatv,
    Benchmark::Unstructured,
];

#[test]
fn logical_replay_matches_machine_verdicts_on_barrier_only_benchmarks() {
    let params = WorkloadParams::quick(NODES, ITERS);
    for bench in BARRIER_ONLY {
        let (_, machine_verdicts) = captured_machine_run(bench);
        let mut policies = ltp_policies(NODES);
        let report = replay(programs(bench, &params), &mut policies, false);
        assert_eq!(
            verdicts_by_site(&report.verdicts),
            verdicts_by_site(&machine_verdicts),
            "{bench:?}: ltp predict's replay diverged from the machine"
        );
        assert_eq!(
            report.verdicts.len(),
            machine_verdicts.len(),
            "{bench:?}: verdict totals"
        );
    }
}
