//! Cross-crate integration tests: every benchmark × every policy runs to
//! completion on a small machine, deterministically, with sane metrics.

use ltp::system::{ExperimentSpec, PolicyKind, RunReport};
use ltp::workloads::Benchmark;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Base,
    PolicyKind::Dsi,
    PolicyKind::LastPc,
    PolicyKind::LTP,
    PolicyKind::LTP_GLOBAL,
];

fn quick(benchmark: Benchmark, policy: PolicyKind) -> RunReport {
    ExperimentSpec::quick(benchmark, policy, 8, 4).run()
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    for benchmark in Benchmark::ALL {
        for policy in POLICIES {
            let report = quick(benchmark, policy);
            let m = &report.metrics;
            assert!(m.exec_cycles > 0, "{benchmark}/{policy:?} ran");
            assert!(m.misses > 0, "{benchmark}/{policy:?} produced traffic");
            assert!(
                m.invalidation_events() > 0,
                "{benchmark}/{policy:?} produced sharing"
            );
        }
    }
}

#[test]
fn metric_invariants_hold_everywhere() {
    for benchmark in Benchmark::ALL {
        for policy in POLICIES {
            let m = quick(benchmark, policy).metrics;
            assert!(
                m.predicted_timely <= m.predicted,
                "{benchmark}/{policy:?}: timely ⊆ predicted"
            );
            assert_eq!(
                m.invalidation_events(),
                m.predicted + m.not_predicted,
                "{benchmark}/{policy:?}: classification partitions events"
            );
            let total_pct = m.predicted_pct() + m.not_predicted_pct();
            assert!(
                (total_pct - 100.0).abs() < 1e-6,
                "{benchmark}/{policy:?}: percentages sum to 100, got {total_pct}"
            );
            if matches!(policy, PolicyKind::Base) {
                assert_eq!(m.predicted, 0, "base never predicts");
                assert_eq!(m.mispredicted, 0, "base never mispredicts");
                assert_eq!(m.self_invalidations_sent, 0, "base never self-invalidates");
            }
        }
    }
}

#[test]
fn runs_are_bit_reproducible() {
    for benchmark in [Benchmark::Barnes, Benchmark::Raytrace, Benchmark::Em3d] {
        let spec = ExperimentSpec::quick(benchmark, PolicyKind::LTP, 6, 3);
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.metrics.exec_cycles, b.metrics.exec_cycles, "{benchmark}");
        assert_eq!(a.metrics.predicted, b.metrics.predicted, "{benchmark}");
        assert_eq!(a.metrics.messages, b.metrics.messages, "{benchmark}");
        assert_eq!(a.events_handled, b.events_handled, "{benchmark}");
    }
}

#[test]
fn seeds_change_stochastic_workloads_only() {
    let run = |benchmark, seed| {
        let mut spec = ExperimentSpec::quick(benchmark, PolicyKind::Base, 6, 3);
        spec.workload.seed = seed;
        spec.run().metrics.exec_cycles
    };
    // Stochastic kernels react to the seed…
    assert_ne!(run(Benchmark::Barnes, 1), run(Benchmark::Barnes, 2));
    // …static kernels do not.
    assert_eq!(run(Benchmark::Em3d, 1), run(Benchmark::Em3d, 2));
    assert_eq!(run(Benchmark::Tomcatv, 1), run(Benchmark::Tomcatv, 2));
}

#[test]
fn ltp_beats_last_pc_on_multi_touch_kernels() {
    // The paper's core claim, on the kernels built to show it.
    for benchmark in [Benchmark::Tomcatv, Benchmark::Moldyn, Benchmark::Unstructured] {
        let ltp = ExperimentSpec::quick(benchmark, PolicyKind::LTP, 8, 12)
            .run()
            .metrics;
        let lpc = ExperimentSpec::quick(benchmark, PolicyKind::LastPc, 8, 12)
            .run()
            .metrics;
        assert!(
            ltp.predicted_pct() > lpc.predicted_pct() + 30.0,
            "{benchmark}: trace correlation must dominate single-PC \
             (ltp {:.1}% vs last-pc {:.1}%)",
            ltp.predicted_pct(),
            lpc.predicted_pct()
        );
    }
}

#[test]
fn em3d_all_predictors_learn_the_one_touch_pattern() {
    for policy in [PolicyKind::LastPc, PolicyKind::LTP] {
        let m = ExperimentSpec::quick(Benchmark::Em3d, policy, 8, 20).run().metrics;
        assert!(
            m.predicted_pct() > 80.0,
            "{policy:?} on em3d: {:.1}%",
            m.predicted_pct()
        );
        assert!(m.mispredicted_pct() < 5.0);
    }
}

#[test]
fn dsi_skips_migratory_blocks() {
    // unstructured is migratory-dominated: DSI must underperform LTP badly.
    let dsi = ExperimentSpec::quick(Benchmark::Unstructured, PolicyKind::Dsi, 8, 12)
        .run()
        .metrics;
    let ltp = ExperimentSpec::quick(Benchmark::Unstructured, PolicyKind::LTP, 8, 12)
        .run()
        .metrics;
    assert!(
        ltp.predicted_pct() > dsi.predicted_pct() + 20.0,
        "ltp {:.1}% vs dsi {:.1}%",
        ltp.predicted_pct(),
        dsi.predicted_pct()
    );
}

#[test]
fn global_table_suffers_cross_block_aliasing_on_tomcatv() {
    let per_block = ExperimentSpec::quick(Benchmark::Tomcatv, PolicyKind::LtpPerBlock { bits: 13 }, 8, 12)
        .run()
        .metrics;
    let global = ExperimentSpec::quick(Benchmark::Tomcatv, PolicyKind::LTP_GLOBAL, 8, 12)
        .run()
        .metrics;
    assert!(
        global.mispredicted_pct() > per_block.mispredicted_pct(),
        "outer/inner subtrace aliasing must show up as global-table prematures \
         (global {:.1}% vs per-block {:.1}%)",
        global.mispredicted_pct(),
        per_block.mispredicted_pct()
    );
}

#[test]
fn dsi_burstiness_shows_in_directory_queueing() {
    let base = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::Base, 8, 12)
        .run()
        .metrics;
    let dsi = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::Dsi, 8, 12)
        .run()
        .metrics;
    assert!(
        dsi.dir_queueing.mean_or_zero() > 2.0 * base.dir_queueing.mean_or_zero(),
        "dsi queueing {:.1} vs base {:.1}",
        dsi.dir_queueing.mean_or_zero(),
        base.dir_queueing.mean_or_zero()
    );
}

#[test]
fn ltp_speeds_up_em3d_end_to_end() {
    let base = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::Base, 8, 20)
        .run()
        .metrics;
    let ltp = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::LTP, 8, 20)
        .run()
        .metrics;
    assert!(
        ltp.speedup_vs(&base) > 1.1,
        "speedup {:.3}",
        ltp.speedup_vs(&base)
    );
}

#[test]
fn storage_accounting_reports_signature_tables() {
    let m = ExperimentSpec::quick(Benchmark::Tomcatv, PolicyKind::LTP, 8, 8)
        .run()
        .metrics;
    assert!(m.storage.blocks_tracked > 0);
    assert!(m.storage.live_entries > 0);
    assert_eq!(m.storage.signature_bits, 13);
    assert!(m.storage.entries_per_block() > 0.0);
    assert!(m.storage.overhead_bytes_per_block() > 0.0);
}
