//! Cross-crate integration tests: every benchmark × every policy runs to
//! completion on a small machine, deterministically, with sane metrics —
//! and the sweep driver produces the same reports in parallel as serially.

use std::sync::Arc;

use ltp::core::{PolicyFactory, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::system::{ExperimentSpec, MemorySink, RunReport, SweepSpec};
use ltp::workloads::Benchmark;

const POLICIES: [&str; 5] = ["base", "dsi", "last-pc", "ltp", "ltp-global"];

fn quick(benchmark: Benchmark, spec: &str) -> RunReport {
    ExperimentSpec::builder(benchmark)
        .policy_spec(spec)
        .expect("builtin spec")
        .nodes(8)
        .iterations(4)
        .build()
        .run()
}

fn quick_metrics(benchmark: Benchmark, spec: &str, nodes: u16, iters: u32) -> ltp::system::Metrics {
    ExperimentSpec::builder(benchmark)
        .policy_spec(spec)
        .expect("builtin spec")
        .nodes(nodes)
        .iterations(iters)
        .build()
        .run()
        .metrics
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    // One parallel sweep covers the whole matrix — this is also the
    // heaviest exercise of the sweep driver in the test suite.
    let registry = PolicyRegistry::with_builtins();
    let sweep = SweepSpec::new()
        .all_benchmarks()
        .policy_specs(&registry, &POLICIES)
        .expect("builtin specs")
        .quick_geometry(8, 4);
    let reports = sweep.collect();
    assert_eq!(reports.len(), 9 * POLICIES.len());
    for report in &reports {
        let m = &report.metrics;
        let what = format!("{}/{}", report.benchmark, report.policy_spec);
        assert!(m.exec_cycles > 0, "{what} ran");
        assert!(m.misses > 0, "{what} produced traffic");
        assert!(m.invalidation_events() > 0, "{what} produced sharing");
    }
}

#[test]
fn metric_invariants_hold_everywhere() {
    for benchmark in Benchmark::ALL {
        for policy in POLICIES {
            let m = quick(benchmark, policy).metrics;
            assert!(
                m.predicted_timely <= m.predicted,
                "{benchmark}/{policy}: timely ⊆ predicted"
            );
            assert_eq!(
                m.invalidation_events(),
                m.predicted + m.not_predicted,
                "{benchmark}/{policy}: classification partitions events"
            );
            let total_pct = m.predicted_pct() + m.not_predicted_pct();
            assert!(
                (total_pct - 100.0).abs() < 1e-6,
                "{benchmark}/{policy}: percentages sum to 100, got {total_pct}"
            );
            if policy == "base" {
                assert_eq!(m.predicted, 0, "base never predicts");
                assert_eq!(m.mispredicted, 0, "base never mispredicts");
                assert_eq!(m.self_invalidations_sent, 0, "base never self-invalidates");
            }
        }
    }
}

#[test]
fn runs_are_bit_reproducible() {
    for benchmark in [Benchmark::Barnes, Benchmark::Raytrace, Benchmark::Em3d] {
        let spec = ExperimentSpec::builder(benchmark)
            .policy_spec("ltp")
            .expect("builtin spec")
            .nodes(6)
            .iterations(3)
            .build();
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a, b, "{benchmark}");
    }
}

#[test]
fn parallel_sweep_matches_serial_through_the_facade() {
    let registry = PolicyRegistry::with_builtins();
    let sweep = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Moldyn])
        .policy_specs(&registry, &["base", "ltp"])
        .expect("builtin specs")
        .quick_geometry(6, 4);
    let serial = sweep.clone().serial().collect();
    let mut sink = MemorySink::new();
    let parallel = sweep.threads(8).execute(&mut sink);
    assert_eq!(serial, parallel);
    assert_eq!(sink.reports(), &serial[..], "sink saw the same run order");
}

#[test]
fn custom_factory_sweeps_from_outside_the_system_crate() {
    // The acceptance scenario of the API redesign: define a policy here (a
    // crate that is a *consumer* of ltp-core/ltp-system), register it, and
    // sweep it — without touching any ltp crate.
    #[derive(Debug)]
    struct EveryOther {
        fire: bool,
    }
    impl SelfInvalidationPolicy for EveryOther {
        fn name(&self) -> &'static str {
            "every-other"
        }
        fn on_touch(&mut self, _touch: ltp::core::Touch) -> bool {
            self.fire = !self.fire;
            self.fire
        }
    }

    #[derive(Debug)]
    struct EveryOtherFactory;
    impl PolicyFactory for EveryOtherFactory {
        fn name(&self) -> &str {
            "every-other"
        }
        fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
            Box::new(EveryOther { fire: false })
        }
    }

    let mut registry = PolicyRegistry::with_builtins();
    registry
        .register_factory(Arc::new(EveryOtherFactory))
        .expect("name is free");

    let sweep = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
        .policy_specs(&registry, &["base", "every-other"])
        .expect("custom spec resolves")
        .quick_geometry(4, 3);
    let serial = sweep.clone().serial().collect();
    let parallel = sweep.collect();
    assert_eq!(serial, parallel, "custom policies sweep deterministically");
    let custom: Vec<&RunReport> = serial
        .iter()
        .filter(|r| r.policy == "every-other")
        .collect();
    assert_eq!(custom.len(), 2);
    for r in custom {
        assert!(
            r.metrics.self_invalidations_sent > 0,
            "the custom policy actually fired"
        );
    }
}

#[test]
fn seeds_change_stochastic_workloads_only() {
    let run = |benchmark, seed| {
        ExperimentSpec::builder(benchmark)
            .policy_spec("base")
            .expect("builtin spec")
            .nodes(6)
            .iterations(3)
            .seed(seed)
            .build()
            .run()
            .metrics
            .exec_cycles
    };
    // Stochastic kernels react to the seed…
    assert_ne!(run(Benchmark::Barnes, 1), run(Benchmark::Barnes, 2));
    // …static kernels do not.
    assert_eq!(run(Benchmark::Em3d, 1), run(Benchmark::Em3d, 2));
    assert_eq!(run(Benchmark::Tomcatv, 1), run(Benchmark::Tomcatv, 2));
}

#[test]
fn ltp_beats_last_pc_on_multi_touch_kernels() {
    // The paper's core claim, on the kernels built to show it.
    for benchmark in [
        Benchmark::Tomcatv,
        Benchmark::Moldyn,
        Benchmark::Unstructured,
    ] {
        let ltp = quick_metrics(benchmark, "ltp", 8, 12);
        let lpc = quick_metrics(benchmark, "last-pc", 8, 12);
        assert!(
            ltp.predicted_pct() > lpc.predicted_pct() + 30.0,
            "{benchmark}: trace correlation must dominate single-PC \
             (ltp {:.1}% vs last-pc {:.1}%)",
            ltp.predicted_pct(),
            lpc.predicted_pct()
        );
    }
}

#[test]
fn em3d_all_predictors_learn_the_one_touch_pattern() {
    for policy in ["last-pc", "ltp"] {
        let m = quick_metrics(Benchmark::Em3d, policy, 8, 20);
        assert!(
            m.predicted_pct() > 80.0,
            "{policy} on em3d: {:.1}%",
            m.predicted_pct()
        );
        assert!(m.mispredicted_pct() < 5.0);
    }
}

#[test]
fn dsi_skips_migratory_blocks() {
    // unstructured is migratory-dominated: DSI must underperform LTP badly.
    let dsi = quick_metrics(Benchmark::Unstructured, "dsi", 8, 12);
    let ltp = quick_metrics(Benchmark::Unstructured, "ltp", 8, 12);
    assert!(
        ltp.predicted_pct() > dsi.predicted_pct() + 20.0,
        "ltp {:.1}% vs dsi {:.1}%",
        ltp.predicted_pct(),
        dsi.predicted_pct()
    );
}

#[test]
fn global_table_suffers_cross_block_aliasing_on_tomcatv() {
    let per_block = quick_metrics(Benchmark::Tomcatv, "ltp:bits=13", 8, 12);
    let global = quick_metrics(Benchmark::Tomcatv, "ltp-global", 8, 12);
    assert!(
        global.mispredicted_pct() > per_block.mispredicted_pct(),
        "outer/inner subtrace aliasing must show up as global-table prematures \
         (global {:.1}% vs per-block {:.1}%)",
        global.mispredicted_pct(),
        per_block.mispredicted_pct()
    );
}

#[test]
fn dsi_burstiness_shows_in_directory_queueing() {
    let base = quick_metrics(Benchmark::Em3d, "base", 8, 12);
    let dsi = quick_metrics(Benchmark::Em3d, "dsi", 8, 12);
    assert!(
        dsi.dir_queueing.mean_or_zero() > 2.0 * base.dir_queueing.mean_or_zero(),
        "dsi queueing {:.1} vs base {:.1}",
        dsi.dir_queueing.mean_or_zero(),
        base.dir_queueing.mean_or_zero()
    );
}

#[test]
fn ltp_speeds_up_em3d_end_to_end() {
    let base = quick_metrics(Benchmark::Em3d, "base", 8, 20);
    let ltp = quick_metrics(Benchmark::Em3d, "ltp", 8, 20);
    assert!(
        ltp.speedup_vs(&base) > 1.1,
        "speedup {:.3}",
        ltp.speedup_vs(&base)
    );
}

#[test]
fn storage_accounting_reports_signature_tables() {
    let m = quick_metrics(Benchmark::Tomcatv, "ltp", 8, 8);
    assert!(m.storage.blocks_tracked > 0);
    assert!(m.storage.live_entries > 0);
    assert_eq!(m.storage.signature_bits, 13);
    assert!(m.storage.entries_per_block() > 0.0);
    assert!(m.storage.overhead_bytes_per_block() > 0.0);
}
