//! Property tests over the full machine: *any* well-formed random program
//! mix must run to completion (no protocol deadlock), with consistent
//! metrics, under every self-invalidation policy.
//!
//! The machine itself asserts data-token monotonicity at every directory
//! (a committed write may never be lost), so each case doubles as a
//! coherence check under randomized interleavings — including the
//! self-invalidation races the predictors inject.

use ltp::core::{BlockId, Pc, SelfInvalidationPolicy};
use ltp::dsm::SystemConfig;
use ltp::sim::{Cycle, Simulation, StopReason};
use ltp::system::{Machine, PolicyKind};
use ltp::workloads::{Lock, LoopedScript, Op, Program};
use proptest::prelude::*;

/// A compact generator-friendly description of one memory op.
#[derive(Debug, Clone)]
enum GenOp {
    Think(u16),
    Read(u8, u8),  // (block, pc-site)
    Write(u8, u8), // (block, pc-site)
    Locked(u8, u8), // critical section on lock l writing block b
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u16..200).prop_map(GenOp::Think),
        (0u8..24, 0u8..12).prop_map(|(b, s)| GenOp::Read(b, s)),
        (0u8..24, 0u8..12).prop_map(|(b, s)| GenOp::Write(b, s)),
        (0u8..3, 0u8..24).prop_map(|(l, b)| GenOp::Locked(l, b)),
    ]
}

/// Per-node op sequences plus the iteration count; barriers are appended
/// after every node's sequence so the programs stay phase-aligned.
fn gen_workload(nodes: usize) -> impl Strategy<Value = (Vec<Vec<GenOp>>, u32)> {
    (
        prop::collection::vec(prop::collection::vec(gen_op(), 1..12), nodes),
        1u32..4,
    )
}

/// Lowers the generated description to real programs. Lock blocks live in a
/// region disjoint from data blocks; every critical section is
/// acquire/write/release, so locks always pair.
fn lower(per_node: &[Vec<GenOp>], iters: u32) -> Vec<Box<dyn Program>> {
    const LOCK_BASE: u64 = 1000;
    per_node
        .iter()
        .map(|ops| {
            let mut body: Vec<Op> = Vec::new();
            for op in ops {
                match *op {
                    GenOp::Think(c) => body.push(Op::Think(u64::from(c))),
                    GenOp::Read(b, s) => body.push(Op::Read {
                        pc: Pc::new(0x5_0000 + u32::from(s) * 0x9c4),
                        block: BlockId::new(u64::from(b)),
                    }),
                    GenOp::Write(b, s) => body.push(Op::Write {
                        pc: Pc::new(0x6_0000 + u32::from(s) * 0xa38),
                        block: BlockId::new(u64::from(b)),
                    }),
                    GenOp::Locked(l, b) => {
                        let lock =
                            Lock::library(BlockId::new(LOCK_BASE + u64::from(l)), 0x7_2c10);
                        body.push(Op::Lock(lock));
                        body.push(Op::Write {
                            pc: Pc::new(0x7_5e80),
                            block: BlockId::new(u64::from(b)),
                        });
                        body.push(Op::Unlock(lock));
                    }
                }
            }
            body.push(Op::Barrier(0));
            Box::new(LoopedScript::new(Vec::new(), body, iters)) as Box<dyn Program>
        })
        .collect()
}

fn run(policy: PolicyKind, per_node: &[Vec<GenOp>], iters: u32) -> ltp::system::Metrics {
    let nodes = per_node.len() as u16;
    let cfg = SystemConfig::builder().nodes(nodes).build().expect("valid");
    let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
        .map(|_| policy.build(Default::default()))
        .collect();
    let machine = Machine::new(cfg, policies, lower(per_node, iters));
    let mut sim = Simulation::new(machine).with_horizon(Cycle::new(200_000_000));
    {
        let (world, queue) = sim.world_and_queue_mut();
        world.prime(queue);
    }
    let summary = sim.run();
    assert_ne!(
        summary.stop,
        StopReason::HorizonReached,
        "protocol deadlock under {policy:?}:\n{}",
        sim.world().stuck_report()
    );
    assert!(sim.world().all_finished());
    sim.into_world().into_metrics()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_program_mix_completes_under_every_policy(
        (per_node, iters) in gen_workload(4)
    ) {
        for policy in [PolicyKind::Base, PolicyKind::Dsi, PolicyKind::LTP] {
            let m = run(policy, &per_node, iters);
            prop_assert_eq!(m.invalidation_events(), m.predicted + m.not_predicted);
            prop_assert!(m.predicted_timely <= m.predicted);
            prop_assert!(m.mispredicted <= m.self_invalidations_sent);
        }
    }

    #[test]
    fn self_invalidation_never_changes_program_traffic_shape(
        (per_node, iters) in gen_workload(3)
    ) {
        // The CPUs execute the same op streams regardless of policy: every
        // program access completes exactly once, as either a hit or a miss
        // (a premature self-invalidation turns a hit into a miss but never
        // adds or removes accesses). Lock spinning adds timing-dependent
        // accesses, so the invariant is asserted for lock-free mixes only.
        let base = run(PolicyKind::Base, &per_node, iters);
        let ltp = run(PolicyKind::LTP, &per_node, iters);
        let has_locks = per_node
            .iter()
            .flatten()
            .any(|op| matches!(op, GenOp::Locked(..)));
        if !has_locks {
            prop_assert_eq!(base.hits + base.misses, ltp.hits + ltp.misses);
        }
    }

    #[test]
    fn deterministic_replay((per_node, iters) in gen_workload(3)) {
        let a = run(PolicyKind::LTP, &per_node, iters);
        let b = run(PolicyKind::LTP, &per_node, iters);
        prop_assert_eq!(a.exec_cycles, b.exec_cycles);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.predicted, b.predicted);
    }
}
